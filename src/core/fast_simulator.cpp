#include "core/fast_simulator.hpp"

#include <cmath>
#include <vector>

#include "core/bias_balancer.hpp"
#include "core/transducer.hpp"
#include "sim/write_visit.hpp"
#include "util/bitops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dnnlife::core {

std::uint32_t sample_binomial(util::Xoshiro256ss& rng, std::uint32_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p == 0.5) {
    // Exact: popcount of n fair bits.
    std::uint32_t count = 0;
    std::uint32_t remaining = n;
    while (remaining >= 64) {
      count += util::popcount(rng.next());
      remaining -= 64;
    }
    if (remaining > 0)
      count += util::popcount(rng.next() & util::low_mask(remaining));
    return count;
  }
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (variance >= 9.0) {
    // Normal approximation with continuity correction.
    const double mean = static_cast<double>(n) * p;
    const double draw = std::round(mean + std::sqrt(variance) * rng.next_gaussian());
    if (draw < 0.0) return 0;
    if (draw > static_cast<double>(n)) return n;
    return static_cast<std::uint32_t>(draw);
  }
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i)
    count += rng.next_double() < p ? 1u : 0u;
  return count;
}

namespace {

/// One write of the materialised inference. The payload words live in a
/// parallel flat buffer indexed by the write's arrival ordinal.
struct WriteRecord {
  std::uint32_t row = 0;
  std::uint32_t block = 0;
  std::uint32_t rotate = 0;                ///< barrel policy
  std::uint32_t inverted_inferences = 0;   ///< deterministic XOR policies
};

class DnnLifeSampler {
 public:
  DnnLifeSampler(const PolicyConfig& config, std::uint64_t writes_per_inference,
                 unsigned inferences)
      : config_(config), writes_per_inference_(writes_per_inference),
        inferences_(inferences),
        base_seed_(util::derive_seed(config.seed, 0x5a5aULL)) {}

  /// Number of inferences (out of N) in which the write with within-
  /// inference ordinal `ordinal` gets E = 1. A pure function of
  /// (seed, ordinal): the per-write RNG stream is derived, never shared,
  /// so any evaluation order — in particular any row sharding across
  /// threads — draws bit-identical values.
  std::uint32_t sample(std::uint64_t ordinal) const {
    util::Xoshiro256ss rng(util::derive_seed(base_seed_, ordinal));
    const double p = config_.trbg_bias;
    if (!config_.bias_balancing)
      return sample_binomial(rng, inferences_, p);
    // Hardware schedule: the balancer phase at global write index
    // i*W + ordinal is ((idx >> M) & 1); phase 1 inverts the TRBG output.
    // The phase-1 population over the arithmetic progression is counted
    // closed-form (Euclidean floor-sum over the period-2^(M+1) schedule)
    // instead of looping over all N inferences per write.
    const auto phase_one = static_cast<std::uint32_t>(
        BiasBalancer::count_phase_one(ordinal, writes_per_inference_,
                                      inferences_, config_.balancer_bits));
    const std::uint32_t phase_zero = inferences_ - phase_one;
    return sample_binomial(rng, phase_zero, p) +
           sample_binomial(rng, phase_one, 1.0 - p);
  }

 private:
  PolicyConfig config_;
  std::uint64_t writes_per_inference_;
  unsigned inferences_;
  std::uint64_t base_seed_;
};

}  // namespace

aging::DutyCycleTracker simulate_fast(const sim::WriteStream& stream,
                                      const PolicyConfig& policy,
                                      const FastSimOptions& options) {
  DNNLIFE_EXPECTS(options.inferences >= 1, "need at least one inference");
  const bool deterministic = policy.kind == PolicyKind::kInversion ||
                             policy.kind == PolicyKind::kBarrelShifter;
  DNNLIFE_EXPECTS(!deterministic || policy.reset_each_inference,
                  "continuous-counter policies need the reference simulator");

  const sim::MemoryGeometry geometry = stream.geometry();
  const std::uint32_t blocks = stream.blocks_per_inference();
  const std::uint32_t words_per_row = geometry.words_per_row();
  const unsigned n_inf = options.inferences;

  // Residency durations: prefix[k] = time elapsed before block k starts.
  // Uniform (empty block_durations) degenerates to prefix[k] = k.
  std::vector<std::uint32_t> durations = stream.block_durations();
  DNNLIFE_EXPECTS(durations.empty() || durations.size() == blocks,
                  "one duration per block");
  std::vector<std::uint32_t> prefix(blocks + 1, 0);
  for (std::uint32_t k = 0; k < blocks; ++k) {
    const std::uint32_t d = durations.empty() ? 1u : durations[k];
    DNNLIFE_EXPECTS(d > 0, "durations must be positive");
    prefix[k + 1] = prefix[k] + d;
  }
  const std::uint32_t total_duration = prefix[blocks];
  DNNLIFE_EXPECTS(static_cast<std::uint64_t>(total_duration) * n_inf <
                      (std::uint64_t{1} << 32),
                  "duration x inferences overflows the duty accumulators");

  aging::DutyCycleTracker tracker(geometry.cells());

  // ---- Phase 1 (sequential): materialise the inference's writes.
  // Policy schedules (per-row write counters) are stream-order state, so
  // they are resolved here; the expensive duty accumulation is deferred to
  // the row-parallel commit phase. A write's arrival index doubles as its
  // within-inference ordinal (the DnnLife sampler's counter).
  std::vector<WriteRecord> records;
  records.reserve(stream.writes_per_inference());
  std::vector<std::uint64_t> payloads;
  payloads.reserve(stream.writes_per_inference() * words_per_row);
  std::vector<std::uint32_t> row_write_index(geometry.rows, 0);
  sim::visit_stream_writes(stream, [&](const sim::RowWriteEvent& event) {
    DNNLIFE_EXPECTS(event.row < geometry.rows, "write row out of range");
    WriteRecord record;
    record.row = event.row;
    record.block = event.block;
    switch (policy.kind) {
      case PolicyKind::kNone:
        break;
      case PolicyKind::kInversion:
        record.inverted_inferences =
            (row_write_index[event.row]++ & 1u) != 0 ? n_inf : 0;
        break;
      case PolicyKind::kBarrelShifter:
        record.rotate = row_write_index[event.row]++ % policy.weight_bits;
        break;
      case PolicyKind::kDnnLife:
        break;  // sampled in the commit phase from the write's ordinal
    }
    records.push_back(record);
    payloads.insert(payloads.end(), event.words.begin(), event.words.end());
  });

  // Group write ordinals by row (stable counting sort: per-row lists stay
  // in temporal order).
  std::vector<std::uint32_t> row_start(static_cast<std::size_t>(geometry.rows) + 1, 0);
  for (const WriteRecord& record : records) ++row_start[record.row + 1];
  for (std::uint32_t row = 0; row < geometry.rows; ++row)
    row_start[row + 1] += row_start[row];
  std::vector<std::uint32_t> grouped(records.size());
  {
    std::vector<std::uint32_t> cursor(row_start.begin(), row_start.end() - 1);
    for (std::uint32_t i = 0; i < records.size(); ++i)
      grouped[cursor[records[i].row]++] = i;
  }

  const RotateTransducer rotator(geometry.row_bits, policy.weight_bits);
  const DnnLifeSampler sampler(policy, stream.writes_per_inference(), n_inf);

  // ---- Phase 2 (parallel over rows): per-row residencies and word-level
  // duty commits. Rows own disjoint cell ranges of the tracker and every
  // per-write quantity is a pure function of the materialised records, so
  // the result is bit-identical for any thread count.
  const auto process_rows = [&](unsigned /*shard*/, std::uint64_t row_begin,
                                std::uint64_t row_end) {
    std::vector<std::uint64_t> rotated(words_per_row);  // per-shard scratch
    for (std::uint64_t row = row_begin; row < row_end; ++row) {
      const std::uint32_t begin = row_start[row];
      const std::uint32_t end = row_start[row + 1];
      if (begin == end) continue;
      const std::uint32_t first_block = records[grouped[begin]].block;
      for (std::uint32_t j = begin; j < end; ++j) {
        const std::uint32_t ordinal = grouped[j];
        const WriteRecord& record = records[ordinal];
        std::uint32_t residency;
        if (j + 1 < end) {
          const std::uint32_t next_block = records[grouped[j + 1]].block;
          DNNLIFE_EXPECTS(next_block >= record.block,
                          "stream blocks out of order");
          residency = prefix[next_block] - prefix[record.block];
        } else {
          // The row's final write wraps cyclically into the next
          // (identical) inference, holding until its first write.
          residency = total_duration - prefix[record.block] + prefix[first_block];
        }
        if (residency == 0) continue;
        const std::uint32_t c = policy.kind == PolicyKind::kDnnLife
                                    ? sampler.sample(ordinal)
                                    : record.inverted_inferences;
        std::span<const std::uint64_t> stored(
            payloads.data() + static_cast<std::size_t>(ordinal) * words_per_row,
            words_per_row);
        if (record.rotate != 0) {
          rotator.rotate_row_into(stored, record.rotate, /*left=*/true, rotated);
          stored = rotated;
        }
        // A '1' bit stores '1' in the (n_inf - c) non-inverted inferences;
        // a '0' bit stores '1' in the c inverted ones.
        tracker.accumulate_row(stored, geometry.row_bits,
                               geometry.cell_index(static_cast<std::uint32_t>(row), 0),
                               residency * (n_inf - c), residency * c,
                               residency * n_inf);
      }
    }
  };
  util::parallel_for_shards(geometry.rows, options.threads, process_rows);
  return tracker;
}

}  // namespace dnnlife::core
