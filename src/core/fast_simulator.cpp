#include "core/fast_simulator.hpp"

#include <vector>

#include "core/transducer.hpp"
#include "sim/write_visit.hpp"
#include "util/parallel.hpp"

namespace dnnlife::core {

namespace {

/// One write of the materialised inference. The payload words live in a
/// parallel flat buffer indexed by the write's arrival ordinal. Kept at 20
/// bytes — both simulator phases stream millions of these.
struct WriteRecord {
  std::uint32_t row = 0;
  std::uint32_t block = 0;
  std::uint32_t inverted_inferences = 0;   ///< resolved deterministic count
  std::uint32_t local_ordinal = 0;         ///< within-region sampler key
  std::uint8_t rotate = 0;                 ///< planned subword rotation (< 64)
  bool sampled = false;                    ///< resolve via sample_inverted
};

}  // namespace

aging::DutyCycleTracker simulate_fast(const sim::WriteStream& stream,
                                      const RegionPolicyTable& policies,
                                      const FastSimOptions& options) {
  DNNLIFE_EXPECTS(options.inferences >= 1, "need at least one inference");
  const sim::MemoryGeometry geometry = stream.geometry();
  const sim::MemoryRegionMap& region_map = policies.region_map();
  policies.check_stream_geometry(geometry);
  const std::uint32_t blocks = stream.blocks_per_inference();
  const std::uint32_t words_per_row = geometry.words_per_row();
  const unsigned n_inf = options.inferences;

  // Aggregation plans, one per region — a policy without one (e.g. the
  // continuous-counter ablation variants) needs the reference simulator.
  const std::vector<std::unique_ptr<PolicyEngine>> engines =
      policies.make_engines();
  std::vector<std::unique_ptr<AggregatePlan>> plans;
  plans.reserve(engines.size());
  for (std::size_t r = 0; r < engines.size(); ++r) {
    plans.push_back(engines[r]->make_aggregate_plan(n_inf));
    DNNLIFE_EXPECTS(plans.back() != nullptr,
                    "policy '" + policies.policy(r).name() +
                        "' (region '" + region_map.region(r).name +
                        "') supports no aggregation plan and needs the "
                        "reference simulator");
  }

  // Residency durations: prefix[k] = time elapsed before block k starts.
  // Uniform (empty block_durations) degenerates to prefix[k] = k.
  std::vector<std::uint32_t> durations = stream.block_durations();
  DNNLIFE_EXPECTS(durations.empty() || durations.size() == blocks,
                  "one duration per block");
  std::vector<std::uint32_t> prefix(blocks + 1, 0);
  for (std::uint32_t k = 0; k < blocks; ++k) {
    const std::uint32_t d = durations.empty() ? 1u : durations[k];
    DNNLIFE_EXPECTS(d > 0, "durations must be positive");
    prefix[k + 1] = prefix[k] + d;
  }
  const std::uint32_t total_duration = prefix[blocks];
  DNNLIFE_EXPECTS(static_cast<std::uint64_t>(total_duration) * n_inf <
                      (std::uint64_t{1} << 32),
                  "duration x inferences overflows the duty accumulators");

  aging::DutyCycleTracker tracker(geometry.cells());
  tracker.set_regions(policies.cell_regions());

  // ---- Phase 1 (sequential): materialise the inference's writes.
  // Policy schedules are stream-order state, so each write is planned here
  // by its region's engine; the expensive duty accumulation is deferred to
  // the row-parallel commit phase. A write's within-region arrival index
  // is its sampler ordinal (one mitigation controller per region).
  std::vector<WriteRecord> records;
  records.reserve(stream.writes_per_inference());
  std::vector<std::uint64_t> payloads;
  payloads.reserve(stream.writes_per_inference() * words_per_row);
  std::vector<std::uint64_t> region_ordinal(plans.size(), 0);
  sim::visit_stream_writes(stream, [&](const sim::RowWriteEvent& event) {
    DNNLIFE_EXPECTS(event.row < geometry.rows, "write row out of range");
    const std::size_t region = region_map.region_of_row(event.row);
    const AggregatePlan::PlannedWrite planned =
        plans[region]->plan_write(region_ordinal[region], event.row);
    DNNLIFE_EXPECTS(planned.rotate < 64, "rotation exceeds the weight word");
    WriteRecord record;
    record.row = event.row;
    record.block = event.block;
    record.rotate = static_cast<std::uint8_t>(planned.rotate);
    record.inverted_inferences = planned.inverted_inferences;
    record.local_ordinal =
        static_cast<std::uint32_t>(region_ordinal[region]++);
    record.sampled = planned.sampled;
    records.push_back(record);
    payloads.insert(payloads.end(), event.words.begin(), event.words.end());
  });
  for (std::size_t r = 0; r < plans.size(); ++r)
    plans[r]->finalize(region_ordinal[r]);

  // Group write ordinals by row (stable counting sort: per-row lists stay
  // in temporal order).
  std::vector<std::uint32_t> row_start(static_cast<std::size_t>(geometry.rows) + 1, 0);
  for (const WriteRecord& record : records) ++row_start[record.row + 1];
  for (std::uint32_t row = 0; row < geometry.rows; ++row)
    row_start[row + 1] += row_start[row];
  std::vector<std::uint32_t> grouped(records.size());
  {
    std::vector<std::uint32_t> cursor(row_start.begin(), row_start.end() - 1);
    for (std::uint32_t i = 0; i < records.size(); ++i)
      grouped[cursor[records[i].row]++] = i;
  }

  const auto rotators = policies.make_rotators();

  // ---- Phase 2 (parallel over rows): per-row residencies and word-level
  // duty commits. Rows own disjoint cell ranges of the tracker and every
  // per-write quantity is a pure function of the materialised records, so
  // the result is bit-identical for any thread count. options.threads is a
  // concurrency budget on the session executor (one bulk submission, not a
  // transient pool), so many scenarios can run their commit phases
  // concurrently without oversubscribing the machine.
  const auto process_rows = [&](unsigned /*shard*/, std::uint64_t row_begin,
                                std::uint64_t row_end) {
    std::vector<std::uint64_t> rotated(words_per_row);  // per-shard scratch
    for (std::uint64_t row = row_begin; row < row_end; ++row) {
      const std::uint32_t begin = row_start[row];
      const std::uint32_t end = row_start[row + 1];
      if (begin == end) continue;
      const std::size_t region =
          region_map.region_of_row(static_cast<std::uint32_t>(row));
      const AggregatePlan& plan = *plans[region];
      const std::uint32_t first_block = records[grouped[begin]].block;
      for (std::uint32_t j = begin; j < end; ++j) {
        const std::uint32_t ordinal = grouped[j];
        const WriteRecord& record = records[ordinal];
        std::uint32_t residency;
        if (j + 1 < end) {
          const std::uint32_t next_block = records[grouped[j + 1]].block;
          DNNLIFE_EXPECTS(next_block >= record.block,
                          "stream blocks out of order");
          residency = prefix[next_block] - prefix[record.block];
        } else {
          // The row's final write wraps cyclically into the next
          // (identical) inference, holding until its first write.
          residency = total_duration - prefix[record.block] + prefix[first_block];
        }
        if (residency == 0) continue;
        const std::uint32_t c = record.sampled
                                    ? plan.sample_inverted(record.local_ordinal)
                                    : record.inverted_inferences;
        std::span<const std::uint64_t> stored(
            payloads.data() + static_cast<std::size_t>(ordinal) * words_per_row,
            words_per_row);
        if (record.rotate != 0) {
          DNNLIFE_EXPECTS(rotators[region].has_value(),
                          "policy rotated but its weight word does not "
                          "divide the row width");
          rotators[region]->rotate_row_into(stored, record.rotate,
                                            /*left=*/true, rotated);
          stored = rotated;
        }
        // A '1' bit stores '1' in the (n_inf - c) non-inverted inferences;
        // a '0' bit stores '1' in the c inverted ones.
        tracker.accumulate_row(stored, geometry.row_bits,
                               geometry.cell_index(static_cast<std::uint32_t>(row), 0),
                               residency * (n_inf - c), residency * c,
                               residency * n_inf);
      }
    }
  };
  util::parallel_for_shards(geometry.rows, options.threads, process_rows);
  return tracker;
}

aging::DutyCycleTracker simulate_fast(const sim::WriteStream& stream,
                                      const PolicyConfig& policy,
                                      const FastSimOptions& options) {
  return simulate_fast(
      stream, RegionPolicyTable::uniform(stream.geometry(), policy), options);
}

}  // namespace dnnlife::core
