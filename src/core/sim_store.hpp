// The disk tier of content-addressed simulation reuse.
//
// SimCache (core/sim_cache.hpp) makes each distinct write stream simulate
// once *per process*; SimStore extends the same content addressing across
// processes, runs and machines. A store is a plain directory of entry
// files, one per simulation fingerprint:
//
//   DIR/<fingerprint>.simstate     committed entry (complete, checksummed)
//   DIR/<fingerprint>.tmp.<pid>.<n>  in-flight publish (never read)
//   DIR/quarantine/                entries that failed validation
//
// Entry files hold a versioned serialization of SimulationState —
// geometry, region tags, every per-segment DutyCycleTracker word, all
// explicit little-endian — framed by a magic string, a format version and
// a trailing content checksum. The framing makes lookup defensive by
// construction: a truncated file, a flipped byte or a stale format
// version fails validation, the offending file is moved into quarantine/
// (preserved for inspection, never re-probed) and the lookup degrades to
// a miss. Lookup never throws for bad entry content.
//
// Publication is crash-durable and atomic (util/fsio.hpp): serialize to a
// unique tmp name in the store directory, fsync, rename onto the final
// name, fsync the parent directory. Readers therefore only ever see
// complete entries, and concurrent publishers of one fingerprint — e.g.
// sibling shards pointed at a shared directory — converge on one valid
// file (renames of byte-identical content, in whatever order). Determinism
// makes the payloads identical: equal fingerprints produce equal tracker
// words.
//
// A byte budget (0 = unbounded) garbage-collects after publish: committed
// entries are evicted oldest-mtime-first until the store fits, never the
// entry just published. In-flight tmp files of live sibling processes are
// left alone.
//
// Like the memory cache, the store only stores and counts — single-flight
// (one simulation per fingerprint under concurrency) stays the
// SweepScheduler's job, and evaluating against a loaded state is
// byte-identical to simulating fresh because the aging fold consumes the
// same tracker bits either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/sim_cache.hpp"

namespace dnnlife::core {

struct SimStoreStats {
  std::uint64_t hits = 0;         ///< lookups satisfied from disk
  std::uint64_t misses = 0;       ///< lookups that found no usable entry
  std::uint64_t publishes = 0;    ///< entries durably written by this store
  std::uint64_t publish_failures = 0;  ///< publish attempts that hit I/O errors
  std::uint64_t quarantined = 0;  ///< invalid entries moved to quarantine/
  std::uint64_t gc_evictions = 0; ///< entries removed by the byte-budget GC
};

/// Thread-safe handle on one store directory. Multiple processes may
/// share a directory concurrently; every instance counts its own stats.
class SimStore {
 public:
  using StatePtr = std::shared_ptr<const SimulationState>;

  struct Options {
    std::string directory;
    /// Byte budget for committed entries; 0 = unbounded. Enforced after
    /// each publish, evicting oldest-mtime entries first.
    std::size_t capacity_bytes = 0;
  };

  /// Creates the directory (like mkdir -p) and probe-writes a file to
  /// validate it is writable up front; throws std::invalid_argument with
  /// an actionable message otherwise — a misconfigured store must fail at
  /// startup, not mid-sweep.
  explicit SimStore(Options options);

  SimStore(const SimStore&) = delete;
  SimStore& operator=(const SimStore&) = delete;

  /// The committed state for `fingerprint`, or nullptr on a miss. An
  /// entry that fails validation (truncated, corrupt, version mismatch)
  /// is quarantined and counts as a miss — never an exception.
  StatePtr lookup(const std::string& fingerprint);

  /// Durably publish `state` under `fingerprint` (tmp + fsync + rename +
  /// parent-dir fsync), then enforce the byte budget. Returns false —
  /// counting a publish failure — when the write fails; a full or failing
  /// disk degrades the store to pass-through instead of failing sweep
  /// points whose simulation already succeeded.
  bool publish(const std::string& fingerprint, const SimulationState& state);

  /// True when a committed entry file exists (existence only — content is
  /// validated by lookup).
  bool contains(const std::string& fingerprint) const;

  /// Committed-entry path for `fingerprint` (exposed for tests/tools).
  std::string entry_path(const std::string& fingerprint) const;

  const std::string& directory() const noexcept { return options_.directory; }
  std::size_t capacity_bytes() const noexcept {
    return options_.capacity_bytes;
  }
  SimStoreStats stats() const;

 private:
  std::string unique_suffix();
  void quarantine(const std::string& path);
  void collect_garbage(const std::string& keep_filename);

  Options options_;
  mutable std::mutex mutex_;  ///< guards stats_
  SimStoreStats stats_;
};

/// The store's on-disk entry encoding (exposed for tests and tools):
/// magic + version + payload + trailing checksum, all little-endian.
std::string serialize_simulation_state(const SimulationState& state);

/// Inverse of serialize_simulation_state. Throws std::invalid_argument
/// prefixed with `label` on any damage: wrong magic, unsupported version,
/// checksum mismatch, truncation, trailing garbage, or invariant
/// violations (region partition, tracker/geometry cell-count agreement).
SimStore::StatePtr deserialize_simulation_state(std::string_view bytes,
                                                const std::string& label);

}  // namespace dnnlife::core
