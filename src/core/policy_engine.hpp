// The first-class policy-engine abstraction.
//
// Before this layer existed, the four mitigation policies were re-implemented
// as PolicyKind switches in the reference simulator, the fast simulator, the
// workload composer and the WDE selection — every new policy cost N parallel
// edits. A PolicyEngine now owns both execution styles of one policy:
//
//  * the stateful per-write replay the reference simulator drives
//    (begin_inference / on_write), and
//  * the aggregated closed-form/arithmetic path the fast simulator drives,
//    exposed as a capability query (make_aggregate_plan returns nullptr for
//    policies that only support literal replay, e.g. the continuous-counter
//    ablation variants).
//
// Engines are created through a name-based registry, so external policies
// can be plugged in without touching either simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mitigation_policy.hpp"
#include "sim/memory_geometry.hpp"
#include "sim/region_map.hpp"
#include "util/rng.hpp"

namespace dnnlife::core {

/// One simulation run's aggregation plan: how a policy's per-write actions
/// distribute over N identical inferences (see fast_simulator.hpp for the
/// aggregation model). The fast simulator drives it in three steps:
///
///  1. plan_write(ordinal, row) once per write, in temporal stream order
///     (sequential — stateful per-row counters are allowed here). `ordinal`
///     is the write's arrival index within the plan's region and inference.
///  2. finalize(writes_per_inference) once, after the full inference has
///     been planned (samplers that need the schedule period, e.g. the bias
///     balancer's global write index, latch it here).
///  3. sample_inverted(ordinal) from the row-parallel commit phase for
///     every write planned with `sampled = true`. Must be a pure function
///     of (plan, ordinal) — it is called concurrently and the result must
///     not depend on evaluation order (that is what keeps the fast
///     simulator bit-identical for any thread count).
class AggregatePlan {
 public:
  struct PlannedWrite {
    std::uint32_t rotate = 0;  ///< subword left-rotation (constant over inferences)
    /// Count c of the N inferences that store the row inverted, already
    /// resolved for deterministic schedules. Ignored when `sampled`.
    std::uint32_t inverted_inferences = 0;
    /// True when c must instead be drawn in the commit phase via
    /// sample_inverted(ordinal).
    bool sampled = false;
  };

  virtual ~AggregatePlan() = default;

  virtual PlannedWrite plan_write(std::uint64_t ordinal, std::uint32_t row) = 0;

  /// Called once between planning and sampling with the number of writes
  /// the plan saw per inference. Default: no-op.
  virtual void finalize(std::uint64_t writes_per_inference);

  /// Thread-safe sampled inverted-inference count for a deferred write.
  /// Default: throws std::logic_error (plans that never defer).
  virtual std::uint32_t sample_inverted(std::uint64_t ordinal) const;
};

/// Strategy interface for one mitigation policy bound to one memory
/// (geometry fixed at construction).
class PolicyEngine {
 public:
  virtual ~PolicyEngine() = default;

  virtual const PolicyConfig& config() const noexcept = 0;

  /// Signal an inference boundary (resets schedule-driven counters).
  virtual void begin_inference() = 0;

  /// The action for the next write to `row` (advances internal state).
  virtual WriteAction on_write(std::uint32_t row) = 0;

  /// Capability query: an aggregation plan over `inferences` identical
  /// inferences, or nullptr when the policy only supports literal replay.
  virtual std::unique_ptr<AggregatePlan> make_aggregate_plan(
      unsigned inferences) const = 0;
};

/// Engine factory: builds one policy engine for the given memory and the
/// row region the engine will own (per-row state need only cover the
/// region's rows; a whole-memory engine gets the full row range).
using PolicyEngineFactory = std::function<std::unique_ptr<PolicyEngine>(
    const PolicyConfig&, const sim::MemoryGeometry&, const sim::MemoryRegion&)>;

/// Name-based policy-engine registry. The four built-in policies are
/// pre-registered under their to_string(PolicyKind) names; extensions add
/// factories under new names. Thread-safe.
class PolicyRegistry {
 public:
  static PolicyRegistry& instance();

  /// Register a factory; throws std::invalid_argument on duplicate names.
  void add(const std::string& name, PolicyEngineFactory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  std::unique_ptr<PolicyEngine> create(const std::string& name,
                                       const PolicyConfig& config,
                                       const sim::MemoryGeometry& geometry,
                                       const sim::MemoryRegion& region) const;

 private:
  PolicyRegistry();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, PolicyEngineFactory>> factories_;
};

/// Validate `config` against `geometry` and create its engine through the
/// registry (name = config.engine when set, else to_string(config.kind)).
/// `region` is the row range the engine owns; the two-argument overload
/// binds the whole memory.
std::unique_ptr<PolicyEngine> make_policy_engine(
    const PolicyConfig& config, const sim::MemoryGeometry& geometry,
    const sim::MemoryRegion& region);
std::unique_ptr<PolicyEngine> make_policy_engine(
    const PolicyConfig& config, const sim::MemoryGeometry& geometry);

/// Internal helper, exposed for tests/benches: draw Binomial(n, p)
/// deterministically from `rng` (exact popcount path at p = 0.5, exact
/// loop for small variance, normal approximation otherwise). Used by the
/// DNN-Life aggregation plan.
std::uint32_t sample_binomial(util::Xoshiro256ss& rng, std::uint32_t n,
                              double p);

}  // namespace dnnlife::core
