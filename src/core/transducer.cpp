#include "core/transducer.hpp"

#include <algorithm>

namespace dnnlife::core {

XorTransducer::XorTransducer(std::uint32_t row_bits) : row_bits_(row_bits) {
  DNNLIFE_EXPECTS(row_bits >= 1, "transducer width");
  full_words_ = row_bits_ / 64;
  const std::uint32_t tail = row_bits_ % 64;
  tail_mask_ = tail == 0 ? 0 : util::low_mask(tail);
}

void XorTransducer::apply(std::span<std::uint64_t> words, bool enable) const {
  DNNLIFE_EXPECTS(words.size() == util::ceil_div(row_bits_, 64),
                  "row word count");
  if (!enable) return;
  for (std::uint32_t w = 0; w < full_words_; ++w) words[w] = ~words[w];
  if (tail_mask_ != 0) words[full_words_] ^= tail_mask_;
}

std::vector<std::uint64_t> XorTransducer::transform(
    std::span<const std::uint64_t> words, bool enable) const {
  std::vector<std::uint64_t> out(words.begin(), words.end());
  apply(out, enable);
  return out;
}

RotateTransducer::RotateTransducer(std::uint32_t row_bits,
                                   std::uint32_t word_bits)
    : row_bits_(row_bits), word_bits_(word_bits) {
  DNNLIFE_EXPECTS(word_bits >= 1 && word_bits <= 64, "weight word width");
  DNNLIFE_EXPECTS(row_bits % word_bits == 0,
                  "row must hold whole weight words");
}

std::vector<std::uint64_t> RotateTransducer::rotate_row(
    std::span<const std::uint64_t> words, unsigned amount, bool left) const {
  std::vector<std::uint64_t> out(words.size(), 0);
  rotate_row_into(words, amount, left, out);
  return out;
}

void RotateTransducer::rotate_row_into(std::span<const std::uint64_t> words,
                                       unsigned amount, bool left,
                                       std::span<std::uint64_t> out) const {
  DNNLIFE_EXPECTS(words.size() == util::ceil_div(row_bits_, 64),
                  "row word count");
  DNNLIFE_EXPECTS(out.size() == words.size(), "output word count");
  DNNLIFE_EXPECTS(out.data() != words.data(), "in-place rotation");
  std::fill(out.begin(), out.end(), 0);
  const std::uint32_t subwords = row_bits_ / word_bits_;
  for (std::uint32_t s = 0; s < subwords; ++s) {
    const std::size_t bit_pos = static_cast<std::size_t>(s) * word_bits_;
    const std::size_t word = bit_pos / 64;
    const unsigned shift = bit_pos % 64;
    // Extract the subword (may straddle a word boundary).
    std::uint64_t value = words[word] >> shift;
    if (shift + word_bits_ > 64)
      value |= words[word + 1] << (64 - shift);
    value &= util::low_mask(word_bits_);
    const std::uint64_t rotated =
        left ? util::rotate_left(value, amount, word_bits_)
             : util::rotate_right(value, amount, word_bits_);
    out[word] |= rotated << shift;
    if (shift + word_bits_ > 64) out[word + 1] |= rotated >> (64 - shift);
  }
}

}  // namespace dnnlife::core
