#include "core/scenario_generator.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <stdexcept>

#include "aging/model_registry.hpp"
#include "core/policy_engine.hpp"
#include "util/check.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace dnnlife::core {

namespace {

using util::JsonValue;

constexpr std::string_view kParamsPrefix = "aging_model_params.";
constexpr std::size_t kMaxPoints = 1'000'000;

/// Environment numerics a grid axis or the jitter block can drive. Bounds
/// mirror parse_environment in core/scenario.cpp, so a generated document
/// never fails its own schema check.
struct EnvParameter {
  std::string_view name;
  double lo, hi;
  double nominal;
};

constexpr EnvParameter kEnvParameters[] = {
    {"temperature_c", -273.0, 1000.0, aging::kNominalTemperatureC},
    {"vdd", 0.05, 10.0, aging::kNominalVdd},
    {"activity_scale", 0.0, 1.0, 1.0},
};

const EnvParameter* env_parameter(std::string_view name) {
  for (const EnvParameter& parameter : kEnvParameters)
    if (parameter.name == name) return &parameter;
  return nullptr;
}

void check_members(const JsonValue& object, const char* where,
                   std::initializer_list<std::string_view> known) {
  for (const auto& [name, _] : object.members()) {
    bool found = false;
    for (const std::string_view candidate : known)
      if (name == candidate) {
        found = true;
        break;
      }
    if (!found)
      throw std::invalid_argument("unknown member '" + name + "' in " + where);
  }
}

/// Render an axis value for names/assignments: strings verbatim, numbers
/// in their canonical (shortest round-trip) form.
std::string render_value(const JsonValue& value) {
  return value.is_string() ? value.as_string()
                           : util::json_number_repr(value.as_number());
}

/// Keep point names filesystem- and CSV-friendly.
std::string sanitize_tag(std::string text) {
  for (char& c : text) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '=' || c == '+' || c == '-';
    if (!ok) c = '-';
  }
  return text;
}

/// The short tag of an axis parameter ("aging_model_params.recovery_floor"
/// → "recovery_floor").
std::string_view short_parameter(std::string_view parameter) {
  const std::size_t dot = parameter.rfind('.');
  return dot == std::string_view::npos ? parameter
                                       : parameter.substr(dot + 1);
}

/// Every phase object of the document, creating the member structure the
/// override needs. Throws when the base has no phases to apply it to.
std::vector<JsonValue>& phases_of(JsonValue& document,
                                  std::string_view parameter) {
  JsonValue* phases = document.find_mutable("phases");
  if (phases == nullptr || !phases->is_array() ||
      phases->items().empty())
    throw std::invalid_argument(
        "sweep base needs a non-empty 'phases' array to apply '" +
        std::string(parameter) + "'");
  return phases->mutable_items();
}

void set_phase_environment(JsonValue& phase, std::string_view key,
                           double value) {
  if (!phase.is_object())
    throw std::invalid_argument("sweep base phases must be objects");
  JsonValue* environment = phase.find_mutable("environment");
  if (environment == nullptr) {
    phase.set("environment", JsonValue::make_object());
    environment = phase.find_mutable("environment");
  }
  environment->set(std::string(key), JsonValue::make_number(value));
}

void apply_policy(JsonValue& document, const std::string& kind) {
  JsonValue* regions = document.find_mutable("regions");
  if (regions == nullptr || regions->items().empty()) {
    JsonValue policy = JsonValue::make_object();
    policy.set("kind", JsonValue::make_string(kind));
    JsonValue region = JsonValue::make_object();
    region.set("name", JsonValue::make_string("memory"));
    region.set("rows", JsonValue::make_number(1.0));
    region.set("policy", std::move(policy));
    JsonValue list = JsonValue::make_array();
    list.push_back(std::move(region));
    document.set("regions", std::move(list));
    return;
  }
  for (JsonValue& region : regions->mutable_items()) {
    if (!region.is_object())
      throw std::invalid_argument("sweep base regions must be objects");
    JsonValue* policy = region.find_mutable("policy");
    if (policy == nullptr) {
      region.set("policy", JsonValue::make_object());
      policy = region.find_mutable("policy");
    }
    policy->set("kind", JsonValue::make_string(kind));
  }
}

void apply_model_param(JsonValue& document, std::string_view key,
                       double value) {
  JsonValue* params = document.find_mutable("aging_model_params");
  if (params == nullptr) {
    document.set("aging_model_params", JsonValue::make_object());
    params = document.find_mutable("aging_model_params");
  }
  params->set(std::string(key), JsonValue::make_number(value));
}

double clamp(double value, double lo, double hi) {
  return value < lo ? lo : (value > hi ? hi : value);
}

}  // namespace

ScenarioGenerator ScenarioGenerator::parse(const std::string& json_text) {
  const JsonValue root = JsonValue::parse(json_text);
  check_members(root, "sweep spec", {"name", "base", "axes", "jitter"});
  ScenarioGenerator generator;
  generator.name_ = root.at("name").as_string();
  if (generator.name_.empty())
    throw std::invalid_argument("sweep 'name' must not be empty");
  generator.base_ = root.at("base");
  if (!generator.base_.is_object())
    throw std::invalid_argument("sweep 'base' must be a scenario object");

  if (const JsonValue* axes = root.find("axes")) {
    for (const JsonValue& axis_doc : axes->items()) {
      check_members(axis_doc, "axis", {"parameter", "values"});
      Axis axis;
      axis.parameter = axis_doc.at("parameter").as_string();
      for (const Axis& existing : generator.axes_)
        if (existing.parameter == axis.parameter)
          throw std::invalid_argument("duplicate sweep axis '" +
                                      axis.parameter + "'");
      const std::vector<JsonValue>& values = axis_doc.at("values").items();
      if (values.empty())
        throw std::invalid_argument("sweep axis '" + axis.parameter +
                                    "' needs at least one value");
      if (values.size() > kMaxPoints)
        throw std::invalid_argument("sweep axis '" + axis.parameter +
                                    "' is absurdly large");
      if (const EnvParameter* parameter = env_parameter(axis.parameter)) {
        for (const JsonValue& value : values)
          value.as_number_in(parameter->lo, parameter->hi, axis.parameter);
      } else if (axis.parameter == "policy") {
        for (const JsonValue& value : values) {
          const std::string& kind = value.as_string();
          try {
            policy_kind_from_string(kind);
          } catch (const std::invalid_argument&) {
            if (!PolicyRegistry::instance().contains(kind))
              throw std::invalid_argument(
                  "sweep axis 'policy' names unknown policy '" + kind + "'");
          }
        }
      } else if (axis.parameter == "aging_model") {
        for (const JsonValue& value : values)
          aging::AgingModelRegistry::instance().check(value.as_string());
      } else if (axis.parameter.rfind(kParamsPrefix, 0) == 0 &&
                 axis.parameter.size() > kParamsPrefix.size()) {
        // Knob values are numbers; which knobs the chosen model accepts is
        // validated per generated point, where the aging_model is known.
        for (const JsonValue& value : values) value.as_number();
      } else {
        throw std::invalid_argument(
            "unknown sweep axis parameter '" + axis.parameter +
            "' (expected temperature_c, vdd, activity_scale, policy, "
            "aging_model, or aging_model_params.<knob>)");
      }
      axis.values = values;
      generator.axes_.push_back(std::move(axis));
    }
  }

  if (const JsonValue* jitter = root.find("jitter")) {
    check_members(*jitter, "jitter",
                  {"seed", "samples", "temperature_c", "vdd",
                   "activity_scale"});
    generator.jitter_present_ = true;
    // The seed is mandatory and explicit: an implicit wall-clock seed
    // would silently break the cross-machine determinism contract.
    generator.jitter_seed_ = jitter->at("seed").as_uint();
    if (const JsonValue* samples = jitter->find("samples")) {
      generator.samples_ = static_cast<std::size_t>(samples->as_uint());
      if (generator.samples_ < 1 || generator.samples_ > kMaxPoints)
        throw std::invalid_argument("jitter samples out of 1.." +
                                    std::to_string(kMaxPoints));
    }
    if (const JsonValue* v = jitter->find("temperature_c"))
      generator.jitter_temperature_ =
          v->as_number_in(0.0, 500.0, "jitter temperature_c");
    if (const JsonValue* v = jitter->find("vdd"))
      generator.jitter_vdd_ = v->as_number_in(0.0, 5.0, "jitter vdd");
    if (const JsonValue* v = jitter->find("activity_scale"))
      generator.jitter_activity_ =
          v->as_number_in(0.0, 1.0, "jitter activity_scale");
  }

  if (generator.point_count() > kMaxPoints)
    throw std::invalid_argument(
        "sweep enumerates " + std::to_string(generator.point_count()) +
        " points, more than the " + std::to_string(kMaxPoints) + " limit");
  return generator;
}

std::size_t ScenarioGenerator::grid_size() const noexcept {
  std::size_t size = 1;
  for (const Axis& axis : axes_) {
    // parse() bounds the product, so this cannot overflow for a spec that
    // made it through validation.
    size *= axis.values.size();
    if (size > kMaxPoints) return size;
  }
  return size;
}

std::vector<GeneratedScenario> ScenarioGenerator::generate() const {
  const std::size_t grid = grid_size();
  const std::size_t total = grid * samples_;
  DNNLIFE_EXPECTS(total <= kMaxPoints, "sweep too large");
  int width = 4;
  for (std::size_t bound = 10000; bound < total; bound *= 10) ++width;
  const util::CounterRng jitter_rng(jitter_seed_);

  std::vector<GeneratedScenario> points;
  points.reserve(total);
  for (std::size_t grid_index = 0; grid_index < grid; ++grid_index) {
    // Decode the row-major multi-index: the last axis varies fastest.
    std::vector<std::size_t> value_index(axes_.size(), 0);
    std::size_t rest = grid_index;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      value_index[a] = rest % axes_[a].values.size();
      rest /= axes_[a].values.size();
    }
    for (std::size_t sample = 0; sample < samples_; ++sample) {
      GeneratedScenario point;
      point.grid_index = grid_index;
      point.jitter_sample = sample;
      const std::size_t linear = grid_index * samples_ + sample;

      JsonValue document = base_;
      std::string tags;
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        const Axis& axis = axes_[a];
        const JsonValue& value = axis.values[value_index[a]];
        const std::string rendered = render_value(value);
        point.assignments.emplace_back(axis.parameter, rendered);
        tags += "-";
        tags += sanitize_tag(std::string(short_parameter(axis.parameter)) +
                             "=" + rendered);
        if (const EnvParameter* parameter = env_parameter(axis.parameter)) {
          for (JsonValue& phase : phases_of(document, axis.parameter))
            set_phase_environment(phase, parameter->name, value.as_number());
        } else if (axis.parameter == "policy") {
          apply_policy(document, value.as_string());
        } else if (axis.parameter == "aging_model") {
          document.set("aging_model",
                       JsonValue::make_string(value.as_string()));
        } else {
          apply_model_param(document,
                            short_parameter(axis.parameter),
                            value.as_number());
        }
      }

      if (jitter_present_) {
        const double amplitudes[] = {jitter_temperature_, jitter_vdd_,
                                     jitter_activity_};
        for (std::size_t slot = 0; slot < 3; ++slot) {
          if (amplitudes[slot] <= 0.0) continue;
          const EnvParameter& parameter = kEnvParameters[slot];
          // One offset per (point, parameter), applied to every phase, so
          // a jittered replicate is a coherent shift of the whole
          // timeline. CounterRng makes it a pure function of
          // (seed, point, parameter) — identical on every machine.
          const double u = jitter_rng.double_at(linear * 3 + slot);
          const double offset = (2.0 * u - 1.0) * amplitudes[slot];
          for (JsonValue& phase : phases_of(document, parameter.name)) {
            double current = parameter.nominal;
            if (const JsonValue* environment = phase.find("environment"))
              if (const JsonValue* v = environment->find(parameter.name))
                current = v->as_number();
            set_phase_environment(
                phase, parameter.name,
                clamp(current + offset, parameter.lo, parameter.hi));
          }
        }
      }

      char padded[32];
      std::snprintf(padded, sizeof padded, "%0*zu", width, linear);
      point.name = name_ + "-" + padded + tags;
      if (samples_ > 1) point.name += "-j" + std::to_string(sample);
      document.set("name", JsonValue::make_string(point.name));
      point.document = util::write_json(document);
      try {
        point.spec = parse_scenario(point.document);
      } catch (const std::exception& error) {
        throw std::invalid_argument("generated scenario '" + point.name +
                                    "': " + error.what());
      }
      points.push_back(std::move(point));
    }
  }
  return points;
}

std::vector<std::string> ScenarioGenerator::materialize(
    const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::string> paths;
  const std::vector<GeneratedScenario> points = generate();
  paths.reserve(points.size());
  for (const GeneratedScenario& point : points) {
    const fs::path path = fs::path(directory) / (point.name + ".json");
    std::ofstream out(path, std::ios::binary);
    if (!out)
      throw std::invalid_argument("cannot open '" + path.string() +
                                  "' for writing");
    out << point.document;
    if (!out)
      throw std::invalid_argument("failed writing '" + path.string() + "'");
    paths.push_back(path.string());
  }
  return paths;
}

}  // namespace dnnlife::core
