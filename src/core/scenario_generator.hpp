// Parameterised scenario generation: one sweep spec → a grid of documents.
//
// Sweeps so far enumerated hand-written JSON files; a thousand-point sweep
// needs a generator. A sweep spec names a base scenario document plus a
// list of grid axes (environment numerics, policy kinds, aging models,
// aging_model_params knobs) and an optional jitter block (seeded uniform
// perturbations of the environment, `samples` replicates per grid point).
// The generator enumerates the full cross product in a stable row-major
// order (later axes vary fastest, jitter samples innermost) and emits one
// concrete scenario per point: a deterministic collision-free name, the
// materialised JSON document (util/json_writer — byte-identical across
// runs and machines) and the parsed ScenarioSpec.
//
// Determinism is the contract: the same spec produces the same documents
// everywhere, so N machines can each run `--spec=... --shard=K/N` with no
// coordinator and their shard summaries merge byte-identically
// (core/sweep_merge.hpp). Jitter uses util::CounterRng on the spec's
// explicit seed — platform-independent, and reproducible per point.
//
// Spec schema (strict, like every document layer here):
//   {
//     "name": "corners",                  // prefix of every point name
//     "base": { <scenario document> },    // "name" optional (overwritten)
//     "axes": [                           // optional
//       {"parameter": "temperature_c", "values": [25, 55, 85]},
//       {"parameter": "vdd",           "values": [0.95, 1.0]},
//       {"parameter": "activity_scale","values": [0.5, 1.0]},
//       {"parameter": "policy",        "values": ["none", "dnn-life"]},
//       {"parameter": "aging_model",   "values": ["pbti-hci"]},
//       {"parameter": "aging_model_params.recovery_floor", "values": [0.0, 0.2]}
//     ],
//     "jitter": {                         // optional
//       "seed": 42,                       // required: explicit, never wall-clock
//       "samples": 3,                     // replicates per grid point (default 1)
//       "temperature_c": 5.0,             // uniform half-width around the point
//       "vdd": 0.02,
//       "activity_scale": 0.0
//     }
//   }
//
// Environment axes and jitter apply to every phase of the document; the
// policy axis rewrites each region's policy kind (creating one
// whole-memory region when the base has none); aging_model_params axes
// route through the scenario's "aging_model_params" object and therefore
// through the model registry's knob validation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "util/json.hpp"

namespace dnnlife::core {

/// One concrete sweep point.
struct GeneratedScenario {
  std::string name;      ///< unique: "<sweep>-<zero-padded index>[-tags][-jK]"
  std::string document;  ///< materialised scenario JSON (ends the file as-is)
  ScenarioSpec spec;     ///< parse_scenario(document)
  /// Grid assignment per axis, in axis order: (parameter, rendered value).
  /// Jitter perturbations are not listed here — they live in the document.
  std::vector<std::pair<std::string, std::string>> assignments;
  std::size_t grid_index = 0;     ///< row-major position in the grid
  std::size_t jitter_sample = 0;  ///< replicate number within the grid point
};

class ScenarioGenerator {
 public:
  /// Parse a sweep spec. Strict: unknown members, unknown axis parameters,
  /// empty value lists, duplicate axes, unregistered policies/models and a
  /// jitter block without a seed all throw std::invalid_argument.
  static ScenarioGenerator parse(const std::string& json_text);

  const std::string& name() const noexcept { return name_; }
  std::size_t grid_size() const noexcept;      ///< product of axis sizes
  std::size_t jitter_samples() const noexcept { return samples_; }
  std::size_t point_count() const noexcept { return grid_size() * samples_; }

  /// Enumerate every point. Each document is validated through
  /// parse_scenario; a base/axis combination that yields an invalid
  /// scenario throws std::invalid_argument naming the point.
  std::vector<GeneratedScenario> generate() const;

  /// Write "<name>.json" per point into `directory` (created if needed).
  /// File contents are exactly GeneratedScenario::document, and the
  /// zero-padded index prefix makes the directory's sorted glob order equal
  /// the generation order — ScenarioSuite::from_directory(directory) yields
  /// the same suite (and manifest hash) as generating in memory. Returns
  /// the file paths in generation order.
  std::vector<std::string> materialize(const std::string& directory) const;

 private:
  struct Axis {
    std::string parameter;
    std::vector<util::JsonValue> values;
  };

  std::string name_;
  util::JsonValue base_;
  std::vector<Axis> axes_;
  std::uint64_t jitter_seed_ = 0;
  std::size_t samples_ = 1;
  double jitter_temperature_ = 0.0;
  double jitter_vdd_ = 0.0;
  double jitter_activity_ = 0.0;
  bool jitter_present_ = false;
};

}  // namespace dnnlife::core
