// Content-addressed simulation reuse: the duty-state cache behind
// cross-point sweep acceleration.
//
// Most sweep axes (temperature_c, vdd, activity_scale, aging_model,
// aging_model_params.*, lifetime.*) never change what the simulator
// writes — only how the aging models evaluate the accumulated duty-cycle
// state. A 3-temps x 2-vdd x 2-models grid over one workload therefore
// simulates the same write stream 12 times. SimCache eliminates that
// redundancy: committed per-environment-segment DutyCycleTracker state is
// keyed by core::simulation_fingerprint (a canonical hash over exactly
// the stream-affecting ScenarioSpec fields; see core/scenario.hpp) and
// shared immutably across points via shared_ptr, so on a hit run_scenario
// skips simulation entirely and only the aging-report pipeline runs.
//
// Concurrency and safety:
//  - Entries are immutable after insert; lookup hands out
//    shared_ptr<const SimulationState>, so an entry evicted while a point
//    is still evaluating against it stays alive until the last reader
//    drops it (refcounted eviction safety).
//  - The cache itself is a mutex-protected LRU bounded by a byte budget
//    (--sim-cache-mb); insert is first-wins, so concurrent computers of
//    the same fingerprint converge on one canonical state.
//  - Single-flight (one *simulation* per fingerprint under concurrency)
//    is the SweepScheduler's job — its admission chain parks queued
//    same-fingerprint siblings behind the first submitter; the cache only
//    stores and counts.
//
// Determinism: evaluating against cached tracker state is byte-identical
// to a cache-off run because the aging fold consumes the same tracker
// bits either way (see the EnvironmentSegmentView overloads of
// make_aging_report / make_lifetime_report).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aging/duty_cycle.hpp"
#include "sim/memory_geometry.hpp"

namespace dnnlife::core {

/// The committed, immutable result of simulating one scenario's write
/// stream: the per-environment-segment duty-cycle accumulators plus the
/// geometry/region shape needed to evaluate them. Environment values are
/// deliberately absent — they are evaluation-time inputs re-attached from
/// the consuming spec's phases (equal fingerprints guarantee an equal
/// segment partition, not equal environments).
struct SimulationState {
  sim::MemoryGeometry geometry;
  /// Region tags of every tracker (also used to rebuild the all-dormant
  /// zero tracker, which is not stored).
  std::vector<aging::CellRegion> regions;
  /// One tracker per run of consecutive equal-environment active phases,
  /// in phase order; empty when every phase is dormant.
  std::vector<aging::DutyCycleTracker> segment_trackers;

  /// Approximate heap footprint, used for the cache's byte budget.
  std::size_t bytes() const;
};

struct SimCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;        ///< currently resident
  std::uint64_t bytes_in_use = 0;   ///< currently resident
};

/// Thread-safe LRU cache of SimulationState keyed by simulation
/// fingerprint. All methods may be called concurrently.
class SimCache {
 public:
  using StatePtr = std::shared_ptr<const SimulationState>;

  explicit SimCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// The cached state for `fingerprint`, or nullptr. Counts a hit or a
  /// miss and freshens the entry's LRU position.
  StatePtr lookup(const std::string& fingerprint);

  /// Insert `state` under `fingerprint` and return the canonical entry:
  /// first-wins, so when another thread raced the same fingerprint in,
  /// the earlier state is returned and `state` is dropped. Inserting may
  /// evict least-recently-used entries past the byte budget — including,
  /// for a state larger than the whole budget, the new entry itself (the
  /// returned pointer stays valid either way).
  StatePtr insert(const std::string& fingerprint, StatePtr state);

  bool contains(const std::string& fingerprint) const;

  std::size_t capacity_bytes() const noexcept { return capacity_bytes_; }
  SimCacheStats stats() const;

 private:
  struct Entry {
    std::string fingerprint;
    StatePtr state;
    std::size_t bytes = 0;
  };

  const std::size_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_in_use_ = 0;
  SimCacheStats stats_;
};

}  // namespace dnnlife::core
