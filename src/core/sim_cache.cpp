#include "core/sim_cache.hpp"

#include <utility>

namespace dnnlife::core {

std::size_t SimulationState::bytes() const {
  std::size_t total = sizeof(SimulationState);
  const auto region_bytes = [](const std::vector<aging::CellRegion>& tags) {
    std::size_t sum = tags.size() * sizeof(aging::CellRegion);
    for (const aging::CellRegion& region : tags) sum += region.name.size();
    return sum;
  };
  total += region_bytes(regions);
  for (const aging::DutyCycleTracker& tracker : segment_trackers) {
    total += sizeof(aging::DutyCycleTracker);
    total += tracker.ones_time().size() * sizeof(std::uint32_t);
    total += tracker.total_time().size() * sizeof(std::uint32_t);
    total += region_bytes(tracker.regions());
  }
  return total;
}

SimCache::StatePtr SimCache::lookup(const std::string& fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = index_.find(fingerprint);
  if (found == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, found->second);  // freshen
  return found->second->state;
}

SimCache::StatePtr SimCache::insert(const std::string& fingerprint,
                                    StatePtr state) {
  DNNLIFE_EXPECTS(state != nullptr, "inserting a null simulation state");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto found = index_.find(fingerprint); found != index_.end()) {
    // Lost a compute race: keep the committed state so every consumer of
    // this fingerprint shares one canonical entry.
    lru_.splice(lru_.begin(), lru_, found->second);
    return found->second->state;
  }
  ++stats_.inserts;
  const std::size_t entry_bytes = state->bytes();
  lru_.push_front(Entry{fingerprint, state, entry_bytes});
  index_.emplace(fingerprint, lru_.begin());
  bytes_in_use_ += entry_bytes;
  // Evict from the cold end past the budget. An entry bigger than the
  // whole budget leaves immediately — but in-use shared_ptrs (including
  // the one we return) keep the state itself alive.
  while (bytes_in_use_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_in_use_ -= victim.bytes;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return state;
}

bool SimCache::contains(const std::string& fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(fingerprint);
}

SimCacheStats SimCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SimCacheStats out = stats_;
  out.entries = index_.size();
  out.bytes_in_use = bytes_in_use_;
  return out;
}

}  // namespace dnnlife::core
