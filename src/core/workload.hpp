// Multi-DNN workload schedules (extension).
//
// The paper evaluates each network "individually" and assumes a single
// DNN is used for the whole device lifetime. Real deployments interleave
// models on the same accelerator; the lifetime duty-cycle of a cell is
// then the time-weighted union of the phases. This module composes
// per-phase simulations over a shared weight memory, with one
// region → policy table applied across all phases.
#pragma once

#include <span>

#include "aging/duty_cycle.hpp"
#include "core/region_policy.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::core {

/// One phase of the device lifetime: a network/accelerator write stream
/// run for a number of inferences in an operating environment. A phase
/// with zero inferences is skipped (it contributes no residency time).
struct WorkloadPhase {
  WorkloadPhase() = default;
  WorkloadPhase(const sim::WriteStream* stream, unsigned inferences,
                aging::EnvironmentSpec environment = {})
      : stream(stream), inferences(inferences), environment(environment) {}

  const sim::WriteStream* stream = nullptr;  // non-owning
  unsigned inferences = 100;
  /// Operating conditions during the phase (temperature / vdd / activity);
  /// default = the nominal calibration point.
  aging::EnvironmentSpec environment;
};

struct WorkloadOptions {
  /// Worker threads per phase (see FastSimOptions::threads; ignored on the
  /// reference path). Results are bit-identical either way.
  unsigned threads = 1;
  /// Replay every phase through the literal reference simulator instead of
  /// the aggregated fast path (small configs / validation).
  bool use_reference_simulator = false;
};

/// Simulate the phases in order on the same physical memory (all streams
/// must share the memory geometry) and accumulate duty-cycle time across
/// them. DNN-Life phases draw decorrelated randomness (the controller
/// keeps running across phases in hardware; here each phase derives a
/// sub-seed, which is statistically equivalent). The returned tracker
/// carries the table's region tags.
aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const RegionPolicyTable& policies,
                                          const WorkloadOptions& options = {});

/// Whole-memory convenience wrapper (uniform region).
aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy);

/// Environment-aware workload result: `segments` holds one duty-cycle
/// accumulator per run of consecutive equal-environment phases (duty
/// time-averages within one environment, so a workload whose phases all
/// share the nominal environment collapses to a single segment —
/// bit-identical to the legacy path), and `combined` is the all-phase
/// merge (the legacy single-operating-point view). Segments may be empty
/// when every phase is dormant; `combined` is always valid.
struct PhasedWorkloadResult {
  std::vector<aging::EnvironmentSegment> segments;
  aging::DutyCycleTracker combined;
};

/// Simulate the phases like simulate_workload but keep per-environment
/// duty-cycle accumulators so the aging layer can integrate degradation
/// across the environment timeline. Phase randomness derivation is
/// identical to simulate_workload (per original phase index), so
/// `combined` matches it bit-for-bit.
PhasedWorkloadResult simulate_workload_phased(
    std::span<const WorkloadPhase> phases, const RegionPolicyTable& policies,
    const WorkloadOptions& options = {});

}  // namespace dnnlife::core
