// Multi-DNN workload schedules (extension).
//
// The paper evaluates each network "individually" and assumes a single
// DNN is used for the whole device lifetime. Real deployments interleave
// models on the same accelerator; the lifetime duty-cycle of a cell is
// then the time-weighted union of the phases. This module composes
// per-phase simulations over a shared weight memory, with one
// region → policy table applied across all phases.
#pragma once

#include <span>

#include "aging/duty_cycle.hpp"
#include "core/region_policy.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::core {

/// One phase of the device lifetime: a network/accelerator write stream
/// run for a number of inferences. A phase with zero inferences is
/// skipped (it contributes no residency time).
struct WorkloadPhase {
  const sim::WriteStream* stream = nullptr;  // non-owning
  unsigned inferences = 100;
};

struct WorkloadOptions {
  /// Worker threads per phase (see FastSimOptions::threads; ignored on the
  /// reference path). Results are bit-identical either way.
  unsigned threads = 1;
  /// Replay every phase through the literal reference simulator instead of
  /// the aggregated fast path (small configs / validation).
  bool use_reference_simulator = false;
};

/// Simulate the phases in order on the same physical memory (all streams
/// must share the memory geometry) and accumulate duty-cycle time across
/// them. DNN-Life phases draw decorrelated randomness (the controller
/// keeps running across phases in hardware; here each phase derives a
/// sub-seed, which is statistically equivalent). The returned tracker
/// carries the table's region tags.
aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const RegionPolicyTable& policies,
                                          const WorkloadOptions& options = {});

/// Whole-memory convenience wrapper (uniform region).
aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy);

}  // namespace dnnlife::core
