// Multi-DNN workload schedules (extension).
//
// The paper evaluates each network "individually" and assumes a single
// DNN is used for the whole device lifetime. Real deployments interleave
// models on the same accelerator; the lifetime duty-cycle of a cell is
// then the time-weighted union of the phases. This module composes
// per-phase simulations over a shared weight memory.
#pragma once

#include <span>

#include "aging/duty_cycle.hpp"
#include "core/mitigation_policy.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::core {

/// One phase of the device lifetime: a network/accelerator write stream
/// run for a number of inferences.
struct WorkloadPhase {
  const sim::WriteStream* stream = nullptr;  // non-owning
  unsigned inferences = 100;
};

/// Simulate the phases in order on the same physical memory (all streams
/// must share the memory geometry) and accumulate duty-cycle time across
/// them. DNN-Life phases draw decorrelated randomness (the controller
/// keeps running across phases in hardware; here each phase derives a
/// sub-seed, which is statistically equivalent).
aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy);

}  // namespace dnnlife::core
