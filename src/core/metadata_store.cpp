#include "core/metadata_store.hpp"

namespace dnnlife::core {

MetadataStore::MetadataStore(std::uint32_t rows)
    : enable_(rows, 0), written_(rows, 0) {
  DNNLIFE_EXPECTS(rows > 0, "metadata store needs rows");
}

void MetadataStore::record_write(std::uint32_t row, bool enable) {
  DNNLIFE_EXPECTS(row < rows(), "row out of range");
  enable_[row] = enable ? 1 : 0;
  written_[row] = 1;
}

bool MetadataStore::enable_of(std::uint32_t row) const {
  DNNLIFE_EXPECTS(row < rows(), "row out of range");
  DNNLIFE_EXPECTS(written_[row] != 0, "reading metadata of unwritten row");
  return enable_[row] != 0;
}

bool MetadataStore::row_written(std::uint32_t row) const {
  DNNLIFE_EXPECTS(row < rows(), "row out of range");
  return written_[row] != 0;
}

double MetadataStore::overhead_fraction(std::uint32_t row_bits) const {
  DNNLIFE_EXPECTS(row_bits > 0, "row width");
  return 1.0 / static_cast<double>(row_bits);
}

}  // namespace dnnlife::core
