#include "core/region_policy.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dnnlife::core {

RegionPolicyTable::RegionPolicyTable(sim::MemoryRegionMap map,
                                     std::vector<PolicyConfig> policies)
    : map_(std::move(map)), policies_(std::move(policies)) {
  DNNLIFE_EXPECTS(policies_.size() == map_.size(),
                  "need exactly one policy per region (" +
                      std::to_string(map_.size()) + " regions, " +
                      std::to_string(policies_.size()) + " policies)");
  for (const PolicyConfig& policy : policies_)
    validate_policy_config(policy, map_.geometry().row_bits);
}

RegionPolicyTable RegionPolicyTable::uniform(const sim::MemoryGeometry& geometry,
                                             PolicyConfig policy) {
  return RegionPolicyTable(sim::MemoryRegionMap::whole_memory(geometry),
                           {std::move(policy)});
}

RegionPolicyTable RegionPolicyTable::with_derived_seeds(
    std::uint64_t stream_index) const {
  std::vector<PolicyConfig> derived = policies_;
  for (PolicyConfig& policy : derived)
    policy.seed = util::derive_seed(policy.seed, stream_index);
  return RegionPolicyTable(map_, std::move(derived));
}

std::vector<std::unique_ptr<PolicyEngine>> RegionPolicyTable::make_engines()
    const {
  std::vector<std::unique_ptr<PolicyEngine>> engines;
  engines.reserve(policies_.size());
  for (std::size_t r = 0; r < policies_.size(); ++r) {
    PolicyConfig policy = policies_[r];
    // Decorrelate the regions' random streams: two regions sharing one
    // configured seed must not draw identical enable sequences. Region 0
    // keeps the raw seed so a uniform (whole-memory) table stays
    // bit-identical to the pre-region code path.
    if (r > 0) policy.seed = util::derive_seed(policy.seed, 0x7e6100ULL + r);
    engines.push_back(make_policy_engine(policy, map_.geometry(), map_.region(r)));
  }
  return engines;
}

void RegionPolicyTable::check_stream_geometry(
    const sim::MemoryGeometry& stream_geometry) const {
  DNNLIFE_EXPECTS(stream_geometry.rows == geometry().rows &&
                      stream_geometry.row_bits == geometry().row_bits,
                  "policy table geometry must match the stream");
}

std::vector<std::optional<RotateTransducer>> RegionPolicyTable::make_rotators()
    const {
  // One rotator per region whose policy's weight word divides the row
  // (validation guarantees this for the barrel shifter; regions that
  // never rotate need none — the simulators assert before rotating).
  std::vector<std::optional<RotateTransducer>> rotators(policies_.size());
  const std::uint32_t row_bits = geometry().row_bits;
  for (std::size_t r = 0; r < policies_.size(); ++r) {
    if (row_bits % policies_[r].weight_bits == 0)
      rotators[r].emplace(row_bits, policies_[r].weight_bits);
  }
  return rotators;
}

std::vector<aging::CellRegion> RegionPolicyTable::cell_regions() const {
  std::vector<aging::CellRegion> cells;
  cells.reserve(map_.size());
  const std::uint32_t row_bits = map_.geometry().row_bits;
  for (const sim::MemoryRegion& region : map_.regions()) {
    cells.push_back(aging::CellRegion{
        region.name,
        static_cast<std::uint64_t>(region.row_begin) * row_bits,
        static_cast<std::uint64_t>(region.row_end) * row_bits});
  }
  return cells;
}

}  // namespace dnnlife::core
