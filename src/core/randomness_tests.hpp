// Statistical randomness tests for TRBG validation (NIST SP 800-22
// style, the three cheapest tests). The aging controller's guarantees
// rest on the TRBG emitting independent bits with a stable long-run bias;
// these tests let an integrator qualify a TRBG model (or a captured
// hardware bitstream) before trusting the duty-cycle math.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/trbg.hpp"

namespace dnnlife::core {

struct RandomnessTestResult {
  std::string test_name;
  double p_value = 0.0;   ///< probability of the observed statistic under H0
  bool passed = false;    ///< p_value >= alpha
};

/// Monobit frequency test: are ones and zeros balanced?
RandomnessTestResult monobit_test(std::span<const std::uint8_t> bits,
                                  double alpha = 0.01);

/// Runs test: is the number of 0/1 runs consistent with independence
/// (given the observed proportion of ones)?
RandomnessTestResult runs_test(std::span<const std::uint8_t> bits,
                               double alpha = 0.01);

/// Serial (2-bit pattern) test: are the four overlapping 2-bit patterns
/// equally likely?
RandomnessTestResult serial_test(std::span<const std::uint8_t> bits,
                                 double alpha = 0.01);

/// Collect `count` bits from a TRBG into a test-ready buffer.
std::vector<std::uint8_t> collect_bits(Trbg& trbg, std::size_t count);

/// Complement of the standard normal CDF for |z| (two-sided p-value
/// helper), exposed for tests.
double two_sided_normal_p(double z);

/// Upper tail of the chi-squared distribution with `dof` in {1, 2, 3}
/// degrees of freedom (closed forms), exposed for tests.
double chi_squared_upper_p(double statistic, unsigned dof);

}  // namespace dnnlife::core
