// Scenario sweeps: a directory of scenario JSON files run as one batch.
//
// The scenario layer made a single experiment declarative; a production
// parameter sweep is hundreds of such documents. ScenarioSuite is the
// batch entry point: glob a directory (or take an explicit file list),
// parse every document strictly up front — a typo fails the load, not the
// 400th scenario of an overnight sweep — then run the specs across a
// util::ThreadPool with per-scenario thread budgets and aggregate the
// outcomes into one CSV / JSON summary. Run-time failures (e.g. a
// lifetime threshold a model cannot reach) are captured per outcome so
// one bad point does not kill the sweep.
//
// Layering: suite → scenario → workbench/workload → policy engines →
// simulators. Per-scenario processes shard across machines naturally; this
// runner shards across cores.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace dnnlife::core {

/// One loaded scenario of a suite.
struct SuiteEntry {
  std::string path;  ///< source file; "" for specs added in memory
  ScenarioSpec spec;
};

/// The outcome of one scenario run.
struct SuiteOutcome {
  std::string path;
  std::string name;
  bool ok = false;
  std::string error;                     ///< failure message when !ok
  std::optional<ScenarioResult> result;  ///< present when ok
  double wall_seconds = 0.0;
};

/// Progress of a running suite, reported once per finished scenario.
struct SuiteProgress {
  std::size_t completed = 0;  ///< finished scenarios, this one included
  std::size_t total = 0;
  const SuiteOutcome* outcome = nullptr;  ///< the scenario that just finished
};

struct SuiteRunOptions {
  /// Concurrent scenario jobs (0 = hardware concurrency, clamped to the
  /// suite size).
  unsigned jobs = 0;
  /// Override every spec's own `threads` (simulation + report evaluation)
  /// with this budget; 0 keeps the per-document values. With J jobs in
  /// flight a budget of hardware/J keeps the machine exactly subscribed.
  unsigned threads_per_scenario = 0;
  /// Invoked after each scenario finishes. Serialized internally, so a CLI
  /// can print from it without locking; must not throw.
  std::function<void(const SuiteProgress&)> progress;
};

class ScenarioSuite {
 public:
  ScenarioSuite() = default;

  /// Load every *.json file of `directory` (sorted by path, so suite order
  /// — and therefore aggregation order — is stable across filesystems).
  /// Throws std::invalid_argument naming the file on any parse error, and
  /// when the directory holds no scenario documents at all.
  static ScenarioSuite from_directory(const std::string& directory);

  /// Load an explicit file list, in the given order.
  static ScenarioSuite from_files(const std::vector<std::string>& paths);

  void add(SuiteEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<SuiteEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Run every scenario, `jobs` at a time. Outcomes are returned in suite
  /// order regardless of completion order (each job fills its own slot).
  std::vector<SuiteOutcome> run(const SuiteRunOptions& options = {}) const;

 private:
  std::vector<SuiteEntry> entries_;
};

/// Write the one-line-per-scenario sweep summary as CSV (whole-memory
/// aging and lifetime numbers; failed scenarios keep their error message
/// and empty metric columns).
void write_suite_csv(const std::string& path,
                     std::span<const SuiteOutcome> outcomes);

/// The same summary as a JSON document: a "scenarios" array plus a
/// "summary" object (counts, total wall time, min/max device lifetime over
/// the successful scenarios).
std::string suite_summary_json(std::span<const SuiteOutcome> outcomes);

}  // namespace dnnlife::core
