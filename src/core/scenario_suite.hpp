// Scenario sweeps: a directory of scenario JSON files run as one batch.
//
// The scenario layer made a single experiment declarative; a production
// parameter sweep is hundreds of such documents. ScenarioSuite is the
// batch entry point: glob a directory (or take an explicit file list),
// parse every document strictly up front — a typo fails the load, not the
// 400th scenario of an overnight sweep — then run the specs through
// core::SweepScheduler on the session-wide work-stealing executor (jobs
// and per-scenario threads are concurrency budgets, not pools) and
// aggregate the outcomes into one CSV / JSON summary. Run-time failures (e.g. a
// lifetime threshold a model cannot reach) are captured per outcome so
// one bad point does not kill the sweep.
//
// Cross-machine sharding: a SuiteShard (--shard=K/N) selects every N-th
// entry of the stable suite order, so N machines split one sweep with no
// coordinator. Each shard's summary records the suite's manifest hash and
// the global index of every outcome; core/sweep_merge.hpp reassembles N
// shard summaries into the byte-identical aggregate a single-machine run
// would have produced.
//
// Layering: suite → scenario → workbench/workload → policy engines →
// simulators. This runner shards across cores; SuiteShard shards across
// machines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/sim_cache.hpp"
#include "core/sim_store.hpp"

namespace dnnlife::util {
class JsonValue;
}

namespace dnnlife::core {

class SweepJournal;

/// One loaded scenario of a suite.
struct SuiteEntry {
  std::string path;  ///< source file; synthetic "<name>.json" for generated specs
  ScenarioSpec spec;
  /// The exact document text (file bytes, or the generator's materialised
  /// output). Input to the suite's manifest hash, so a sweep loaded from a
  /// directory and the same sweep generated in memory hash identically.
  std::string document;
};

/// One machine's slice of a sweep: shard `index` (1-based) of `count`,
/// selecting entries index-1, index-1+count, ... of the suite order.
/// The default {1, 1} selects everything.
struct SuiteShard {
  unsigned index = 1;
  unsigned count = 1;
};

/// The outcome of one scenario run.
struct SuiteOutcome {
  std::size_t index = 0;  ///< global position in the (unsharded) suite order
  std::string path;
  std::string name;
  bool ok = false;
  bool timed_out = false;                ///< !ok because the soft deadline passed
  unsigned attempts = 1;                 ///< attempts consumed (>= 1)
  std::string error;                     ///< failure message when !ok
  std::optional<ScenarioResult> result;  ///< present when ok
  double wall_seconds = 0.0;             ///< across all attempts
  /// Simulation fingerprint of the spec (core::simulation_fingerprint);
  /// equal fingerprints shared one simulation when a sim cache was active.
  std::string fingerprint;
};

/// Progress of a running suite, reported once per finished scenario.
struct SuiteProgress {
  std::size_t completed = 0;  ///< finished scenarios, this one included
  std::size_t total = 0;      ///< scenarios this run executes (the shard's share)
  const SuiteOutcome* outcome = nullptr;  ///< the scenario that just finished
};

/// Where in a run a fault-injection hook fires: at the start of attempt
/// `attempt` (1-based) of the scenario at global suite index `index`.
struct SuiteFaultContext {
  std::size_t index = 0;
  unsigned attempt = 1;
};

/// Deterministic fault-injection hook: runs on the attempt's own thread
/// before the scenario executes. A hook that throws simulates a failing
/// attempt (exercising the retry path), one that sleeps simulates a stall
/// (exercising the soft-deadline watchdog), and one that calls _Exit
/// simulates a process crash (exercising journal resume). Production runs
/// leave it empty.
using SuiteFaultHook = std::function<void(const SuiteFaultContext&)>;

struct SuiteRunOptions {
  /// Concurrent scenario jobs (0 = hardware concurrency, clamped to the
  /// suite size).
  unsigned jobs = 0;
  /// Override every spec's own `threads` (simulation + report evaluation)
  /// with this budget; 0 keeps the per-document values. With J jobs in
  /// flight a budget of hardware/J keeps the machine exactly subscribed.
  unsigned threads_per_scenario = 0;
  /// Run only this shard's selection of the suite.
  SuiteShard shard;
  /// Extra attempts after a failed or timed-out attempt (0 = fail fast).
  /// Every attempt starts from a fresh copy of the parsed spec, so no
  /// state leaks between attempts; the outcome records the attempts used.
  unsigned retries = 0;
  /// Soft per-scenario deadline in seconds, measured on the monotonic
  /// clock (0 = no watchdog). An attempt that exceeds it is classified as
  /// `timeout` and abandoned — its worker thread is detached and its
  /// eventual result discarded — so one stuck point cannot hang the whole
  /// shard. Soft: the abandoned computation itself is not cancelled.
  double soft_deadline_seconds = 0.0;
  /// Fault-injection hook for tests and `sweep_runner --inject-fault`.
  SuiteFaultHook fault_hook;
  /// Durable result journal (core/sweep_journal.hpp). When set, indices the
  /// journal already holds are skipped and every freshly completed outcome
  /// is appended (flushed record by record), so a killed process leaves a
  /// resumable prefix. The journal header must match this suite and shard;
  /// run() throws std::invalid_argument otherwise.
  SweepJournal* journal = nullptr;
  /// Invoked after each scenario finishes. Serialized internally, so a CLI
  /// can print from it without locking; must not throw.
  std::function<void(const SuiteProgress&)> progress;
  /// Shared duty-state cache (core/sim_cache.hpp): points whose specs
  /// share a simulation fingerprint simulate once and evaluate against
  /// the shared tracker state, with single-flight dedup under
  /// concurrency. Null disables reuse. Summaries are byte-identical
  /// either way (--omit-timing).
  std::shared_ptr<SimCache> sim_cache;
  /// Disk tier under the cache (core/sim_store.hpp): memory misses probe
  /// the store directory and fresh simulations are durably published to
  /// it, so re-runs, resumed crashes and sibling shards pointed at one
  /// shared directory reuse committed duty state across processes. Null
  /// disables the tier. Summaries are byte-identical either way.
  std::shared_ptr<SimStore> sim_store;
};

class ScenarioSuite {
 public:
  ScenarioSuite() = default;

  /// Load every *.json file of `directory` (sorted by path, so suite order
  /// — and therefore aggregation order — is stable across filesystems).
  /// Throws std::invalid_argument naming the file on any parse error, and
  /// when the directory holds no scenario documents at all.
  static ScenarioSuite from_directory(const std::string& directory);

  /// Load an explicit file list, in the given order.
  static ScenarioSuite from_files(const std::vector<std::string>& paths);

  /// The global indices shard selects from a suite of `size` entries:
  /// index-1, index-1+count, ... Shards of the same count are pairwise
  /// disjoint and together cover exactly [0, size). Throws
  /// std::invalid_argument on count == 0 or index outside [1, count].
  static std::vector<std::size_t> shard_selection(std::size_t size,
                                                  const SuiteShard& shard);

  void add(SuiteEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<SuiteEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Stable 64-bit hex hash over every entry's (name, document) in suite
  /// order: two machines agree on it exactly when they loaded the same
  /// sweep in the same order, which is what makes shard summaries safely
  /// mergeable.
  std::string manifest_hash() const;

  /// Run the shard's scenarios, `jobs` at a time. Outcomes are returned in
  /// suite order regardless of completion order (each job fills its own
  /// slot), carrying their global suite index.
  std::vector<SuiteOutcome> run(const SuiteRunOptions& options = {}) const;

 private:
  std::vector<SuiteEntry> entries_;
};

/// One summary row: the whole-memory metrics of an outcome reduced to the
/// values the CSV/JSON emitters print. Built either from a live
/// SuiteOutcome or parsed back from a shard summary (core/sweep_merge.hpp);
/// both paths feed the same emitters, which is what makes a merged summary
/// byte-identical to a single-machine one. Absent metrics (failed or
/// dormant scenarios, infinite lifetimes) are NaN and render as CSV
/// empty / JSON null.
struct SuiteRecord {
  std::size_t index = 0;  ///< global suite index
  std::string path;
  std::string name;
  /// Simulation fingerprint (emitted when non-empty; absent in legacy
  /// summaries). sweep_merge passes it through untouched.
  std::string fingerprint;
  bool ok = false;
  bool timed_out = false;  ///< renders as status "timeout" (implies !ok)
  unsigned attempts = 1;   ///< emitted only when > 1, parsed back as given
  std::string error;
  std::uint64_t total_cells = 0;   ///< valid when ok
  std::uint64_t unused_cells = 0;  ///< valid when ok
  double snm_mean = 0.0, snm_max = 0.0;
  double duty_mean = 0.0, fraction_optimal = 0.0;
  double lifetime_years = 0.0, improvement_over_worst = 0.0;
  double fraction_of_ideal = 0.0;
  double wall_seconds = 0.0;
};

/// What a summary says about the sweep it belongs to, beyond the rows.
struct SuiteSummaryInfo {
  std::size_t total_scenarios = 0;  ///< full suite size across all shards
  std::string manifest_hash;        ///< "" omits the manifest object
  SuiteShard shard;                 ///< count == 1 → unsharded (no shard object)
  /// Wall-clock fields are nondeterministic; omit them (--omit-timing)
  /// when summaries must be byte-comparable across runs.
  bool include_timing = true;
  /// Global indices absent from a partial merge (sweep_merge
  /// --allow-partial). Non-empty → the JSON summary gains a "partial"
  /// header object listing them, so operators see exactly what to
  /// resubmit. Always empty for complete sweeps.
  std::vector<std::size_t> missing_indices;
  /// Simulation-reuse counters of the run's SimCache, surfaced in the
  /// summary object. Emitted only when include_timing is set: cache
  /// effectiveness is a run property (like wall time), and byte-compare
  /// gates diff cache-on vs cache-off summaries under --omit-timing.
  std::optional<SimCacheStats> sim_cache;
  /// Disk-tier counters of the run's SimStore, under the same
  /// include_timing rule as sim_cache.
  std::optional<SimStoreStats> sim_store;
};

SuiteRecord make_suite_record(const SuiteOutcome& outcome);
std::vector<SuiteRecord> make_suite_records(
    std::span<const SuiteOutcome> outcomes);

/// One record as the exact JSON object text the summary's "scenarios"
/// array carries. Shared by the summary emitter and the sweep journal
/// (core/sweep_journal.hpp), which is what makes a summary rebuilt from
/// journaled records byte-identical to one written live.
std::string suite_record_json(const SuiteRecord& record, bool include_timing);

/// Parse one record object back (the inverse of suite_record_json; also
/// the per-entry parser of core/sweep_merge.hpp). Throws
/// std::invalid_argument on malformed entries. When `has_timing` is given
/// it is set to whether the entry carried a wall_seconds field.
SuiteRecord parse_suite_record(const util::JsonValue& entry,
                               bool* has_timing = nullptr);

/// Write the one-line-per-scenario sweep summary as CSV (whole-memory
/// aging and lifetime numbers; failed scenarios keep their error message
/// and empty metric columns).
void write_suite_csv(const std::string& path,
                     std::span<const SuiteRecord> records,
                     const SuiteSummaryInfo& info);
void write_suite_csv(const std::string& path,
                     std::span<const SuiteOutcome> outcomes);

/// The same summary as a JSON document: an optional "manifest"/"shard"
/// header, a "scenarios" array (one object per record, global index
/// included) and a "summary" object (counts, total wall time, min/max
/// device lifetime over the successful scenarios).
std::string suite_summary_json(std::span<const SuiteRecord> records,
                               const SuiteSummaryInfo& info);
std::string suite_summary_json(std::span<const SuiteOutcome> outcomes);

}  // namespace dnnlife::core
