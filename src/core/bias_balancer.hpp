// The M-bit bias-balancing register of the aging mitigation controller
// (paper Fig. 8 / Sec. IV): an M-bit counter increments on every write;
// each time it wraps (every 2^M writes), the polarity applied to the TRBG
// output toggles. A TRBG bias of p therefore averages out to
// (p + (1-p)) / 2 = 0.5 over any two adjacent phases.
#pragma once

#include <cstdint>

#include "util/bitops.hpp"
#include "util/check.hpp"

namespace dnnlife::core {

class BiasBalancer {
 public:
  explicit BiasBalancer(unsigned register_bits);

  /// Apply the current polarity to `raw` and advance the counter.
  bool transform(bool raw);

  /// Polarity that will be applied to the next bit.
  bool phase() const noexcept { return phase_; }
  /// Current counter value (for inspection/tests).
  std::uint32_t counter() const noexcept { return counter_; }
  unsigned register_bits() const noexcept { return bits_; }
  /// Writes per polarity phase (2^M).
  std::uint32_t period() const noexcept { return std::uint32_t{1} << bits_; }

  void reset() noexcept {
    counter_ = 0;
    phase_ = false;
  }

  /// The polarity the balancer applies at global write index `idx`
  /// (0-based), as a pure function: (idx >> M) & 1. Used by the fast
  /// simulator to reproduce the hardware schedule without stepping.
  static bool phase_at(std::uint64_t idx, unsigned register_bits) noexcept {
    return ((idx >> register_bits) & 1u) != 0;
  }

  /// Closed-form count of phase-1 indices in the arithmetic progression
  /// idx = offset + i*step, i in [0, n). phase_at is bit M of idx, i.e.
  /// floor(idx / 2^M) - 2*floor(idx / 2^(M+1)); summing both floors along
  /// the progression with util::floor_sum evaluates the whole
  /// period-2^(M+1) schedule in O(log) arithmetic steps instead of the
  /// O(n) loop the fast simulator used to run per write ordinal.
  static std::uint64_t count_phase_one(std::uint64_t offset, std::uint64_t step,
                                       std::uint64_t n, unsigned register_bits) {
    DNNLIFE_EXPECTS(register_bits < 63, "balancer register too wide");
    const std::uint64_t half = std::uint64_t{1} << register_bits;
    return util::floor_sum(n, step, offset, half) -
           2 * util::floor_sum(n, step, offset, 2 * half);
  }

 private:
  unsigned bits_;
  std::uint32_t counter_ = 0;
  bool phase_ = false;
};

}  // namespace dnnlife::core
