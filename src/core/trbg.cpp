#include "core/trbg.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dnnlife::core {

BiasedTrbg::BiasedTrbg(double p_one, std::uint64_t seed)
    : p_one_(p_one), rng_(seed) {
  DNNLIFE_EXPECTS(p_one >= 0.0 && p_one <= 1.0, "TRBG bias out of [0,1]");
}

RingOscillatorTrbg::RingOscillatorTrbg(Params params)
    : params_(params), rng_(params.seed) {
  DNNLIFE_EXPECTS(params_.duty > 0.0 && params_.duty < 1.0,
                  "ring duty must be in (0,1)");
  DNNLIFE_EXPECTS(params_.sample_period > 0.0, "sample period");
  DNNLIFE_EXPECTS(params_.jitter_sigma >= 0.0, "jitter sigma");
}

bool RingOscillatorTrbg::next() {
  // Advance the ring phase by one sampler period plus accumulated jitter;
  // only the fractional part matters.
  phase_ += params_.sample_period +
            params_.jitter_sigma * rng_.next_gaussian();
  phase_ -= std::floor(phase_);
  // The ring output is high for the first `duty` fraction of each period.
  return phase_ < params_.duty;
}

}  // namespace dnnlife::core
