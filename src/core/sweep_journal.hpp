// Append-only sweep result journal: crash-durable partial progress.
//
// A multi-hour sweep shard that dies (OOM kill, node preemption, power
// loss) must not lose its completed points. The journal is a JSONL file:
// one header line binding it to a (manifest hash, suite size, shard,
// timing mode), then one line per completed SuiteOutcome — successes,
// failures and timeouts alike — written with the exact record emitter the
// summary uses (suite_record_json) and flushed + fsynced record by record.
// A killed process therefore leaves a valid prefix: the reader tolerates a
// truncated final line (the one write that was in flight) and rejects
// everything else that is malformed, so corruption is loud and crash
// debris is silent.
//
// Resume: SweepJournal::resume re-reads that prefix, rejects a journal
// whose header does not match the suite about to run (a stale journal
// path must never splice two different sweeps), compacts the valid prefix
// back to disk and reopens for append. ScenarioSuite::run skips the
// replayed indices and appends the rest; resumed_suite_records then merges
// replayed + fresh records into the list an uninterrupted run would have
// produced — byte-identical summaries when timing is omitted.
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario_suite.hpp"

namespace dnnlife::core {

/// The journal's first line: what sweep (and which slice of it) the
/// records belong to. All four fields must match the resuming run.
struct SweepJournalHeader {
  std::string manifest_hash;        ///< ScenarioSuite::manifest_hash()
  std::size_t total_scenarios = 0;  ///< full suite size across all shards
  SuiteShard shard;                 ///< the slice this journal covers
  /// Whether records carry wall_seconds. Resume rejects a mismatch: mixing
  /// timed and untimed records would break the byte-identity guarantee.
  bool include_timing = true;
};

/// Everything a journal file holds, as read back.
struct SweepJournalContents {
  SweepJournalHeader header;
  std::vector<SuiteRecord> records;  ///< journal (completion) order
  bool truncated_tail = false;  ///< a final partial line was dropped
};

/// True when `text` opens with a sweep-journal header line — how
/// sweep_merge tells a journal from a summary document.
bool looks_like_sweep_journal(std::string_view text);

/// Parse journal text. Tolerates a truncated final line (crash debris);
/// throws std::invalid_argument, naming `label`, on a malformed header, a
/// malformed non-final line, duplicate indices, or records outside the
/// header's shard selection.
SweepJournalContents parse_sweep_journal(std::string_view text,
                                         const std::string& label);

/// parse_sweep_journal over a file's bytes; throws when unreadable.
SweepJournalContents read_sweep_journal(const std::string& path);

/// The open, writable journal of one running shard. Thread-safe appends
/// (ScenarioSuite::run appends from every job); movable, closed on
/// destruction.
class SweepJournal {
 public:
  /// Start a fresh journal at `path` (truncating an existing file) with
  /// this header. The header line is flushed immediately.
  static SweepJournal create(const std::string& path,
                             SweepJournalHeader header);

  /// Continue a journal: read the valid prefix of `path` (a missing or
  /// empty file — or one holding only a torn header line — starts fresh),
  /// validate its header equals `expected` field by field (throwing
  /// std::invalid_argument with the mismatch named otherwise), rewrite the
  /// valid prefix so crash debris never precedes fresh appends, and open
  /// for append.
  static SweepJournal resume(const std::string& path,
                             const SweepJournalHeader& expected);

  // Out of line: State is incomplete here (pimpl).
  SweepJournal(SweepJournal&& other) noexcept;
  SweepJournal& operator=(SweepJournal&& other) noexcept;
  ~SweepJournal();

  const std::string& path() const noexcept;
  const SweepJournalHeader& header() const noexcept;
  /// Records recovered by resume (empty for create), journal order.
  const std::vector<SuiteRecord>& replayed() const noexcept;
  /// Whether resume dropped a truncated final line.
  bool recovered_truncated_tail() const noexcept;

  /// Whether `index` is already journaled (replayed or appended).
  bool completed(std::size_t index) const;
  /// All journaled indices, sorted ascending.
  std::vector<std::size_t> completed_indices() const;

  /// Append one completed record: a single write, flushed and fsynced, so
  /// the record survives the process dying on the very next instruction.
  /// Throws std::invalid_argument on an index outside the header's shard
  /// selection or one already journaled.
  void append(const SuiteRecord& record);

 private:
  SweepJournal() = default;
  struct State;
  std::unique_ptr<State> state_;
};

/// Replayed journal records plus freshly executed outcomes, sorted by
/// global index: the record list an uninterrupted run of the shard would
/// have produced, ready for write_suite_csv / suite_summary_json. Throws
/// std::logic_error if the two sets overlap.
std::vector<SuiteRecord> resumed_suite_records(
    const SweepJournal& journal, std::span<const SuiteOutcome> fresh);

}  // namespace dnnlife::core
