#include "core/sweep_scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/sim_cache.hpp"
#include "core/sim_store.hpp"
#include "core/sweep_journal.hpp"
#include "util/executor.hpp"
#include "util/table.hpp"

namespace dnnlife::core {

namespace {

/// What one attempt produced; moved into the outcome of the last attempt.
struct AttemptOutcome {
  bool ok = false;
  bool timed_out = false;
  std::string error;
  std::optional<ScenarioResult> result;
};

/// Run one attempt: fault hook, then the scenario, from a fresh spec copy.
/// With a soft deadline the attempt executes on its own thread — never on
/// a pool worker, which could not be abandoned — and on expiry the thread
/// is detached (the shared state keeps everything it still touches alive,
/// and it discards its result once it sees the abandoned flag) so the
/// sweep moves on instead of hanging.
AttemptOutcome execute_attempt(ScenarioSpec spec, std::size_t global_index,
                               unsigned attempt, double soft_deadline_seconds,
                               const SuiteFaultHook& fault_hook,
                               RunScenarioOptions run_options) {
  const auto body = [](ScenarioSpec& fresh_spec, std::size_t index,
                       unsigned attempt_number, const SuiteFaultHook& hook,
                       const RunScenarioOptions& scenario_options,
                       AttemptOutcome& out) {
    try {
      if (hook) hook(SuiteFaultContext{index, attempt_number});
      out.result = run_scenario(fresh_spec, scenario_options);
      out.ok = true;
    } catch (const std::exception& error) {
      out.error = error.what();
    } catch (...) {
      out.error = "unknown error";
    }
  };
  if (soft_deadline_seconds <= 0.0) {
    AttemptOutcome out;
    body(spec, global_index, attempt, fault_hook, run_options, out);
    return out;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    AttemptOutcome out;
  };
  const auto shared = std::make_shared<Shared>();
  // The worker owns copies of everything it touches (spec, hook, the
  // cache shared_ptr), so an abandoned worker never dangles into the
  // caller's frame.
  std::thread worker([shared, spec = std::move(spec), hook = fault_hook,
                      run_options = std::move(run_options), global_index,
                      attempt, body]() mutable {
    AttemptOutcome local;
    body(spec, global_index, attempt, hook, run_options, local);
    const std::lock_guard<std::mutex> lock(shared->mutex);
    if (!shared->abandoned) shared->out = std::move(local);
    shared->done = true;
    shared->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(shared->mutex);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(soft_deadline_seconds),
      [&] { return shared->done; });
  if (finished) {
    lock.unlock();
    worker.join();
    return std::move(shared->out);
  }
  shared->abandoned = true;
  lock.unlock();
  worker.detach();
  AttemptOutcome out;
  out.timed_out = true;
  out.error = "soft deadline of " + util::Table::num(soft_deadline_seconds, 3) +
              " s exceeded";
  return out;
}

}  // namespace

/// Shared state behind a Handle. `done` flips exactly once, under `mutex`,
/// after outcome/record are in place; readers that saw done under the
/// mutex (or via a blocking wait) may then read both without it.
struct SweepScheduler::PointState {
  std::size_t index = 0;
  SuiteEntry entry;
  bool replayed = false;
  util::Executor* executor = nullptr;
  /// Simulation fingerprint, computed at submit time when a sim cache or
  /// store is active (run_point fills it in lazily otherwise, for the
  /// record).
  std::string fingerprint;
  /// True while this point owns its fingerprint group: it simulates, and
  /// same-fingerprint submissions park behind it until it completes.
  bool leads = false;

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::optional<SuiteOutcome> outcome;
  std::optional<SuiteRecord> record;

  void wait_done() {
    // Help the executor while blocked: a pool worker polling a handle
    // keeps draining tasks (possibly the very point it waits for), so
    // handle waits cannot deadlock the pool; the short timed wait covers
    // the window where no work is available but the point is mid-flight.
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        if (done) return;
      }
      if (executor != nullptr && executor->try_help()) continue;
      std::unique_lock<std::mutex> lock(mutex);
      if (cv.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return done; }))
        return;
    }
  }
};

std::size_t SweepScheduler::Handle::index() const {
  DNNLIFE_EXPECTS(state_ != nullptr, "empty sweep handle");
  return state_->index;
}

bool SweepScheduler::Handle::replayed() const {
  DNNLIFE_EXPECTS(state_ != nullptr, "empty sweep handle");
  return state_->replayed;
}

bool SweepScheduler::Handle::done() const {
  DNNLIFE_EXPECTS(state_ != nullptr, "empty sweep handle");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

const SuiteOutcome& SweepScheduler::Handle::outcome() const {
  DNNLIFE_EXPECTS(state_ != nullptr, "empty sweep handle");
  if (state_->replayed)
    throw std::logic_error(
        "sweep point " + std::to_string(state_->index) +
        " was replayed from the journal; it has a record() but no outcome");
  state_->wait_done();
  DNNLIFE_EXPECTS(state_->outcome.has_value(), "finished point lost its outcome");
  return *state_->outcome;
}

SuiteOutcome SweepScheduler::Handle::take_outcome() {
  outcome();  // blocks + validates; afterwards nothing else writes the state
  SuiteOutcome taken = std::move(*state_->outcome);
  state_->outcome.reset();
  return taken;
}

const SuiteRecord& SweepScheduler::Handle::record() const {
  DNNLIFE_EXPECTS(state_ != nullptr, "empty sweep handle");
  state_->wait_done();
  DNNLIFE_EXPECTS(state_->record.has_value(), "finished point lost its record");
  return *state_->record;
}

struct SweepScheduler::Impl {
  explicit Impl(Options options)
      : options(std::move(options)),
        executor(&util::Executor::session()),
        jobs(util::resolve_thread_count(this->options.jobs)),
        group(*executor) {
    if (this->options.journal != nullptr) {
      // Records recovered at journal-open time; submissions of these
      // indices replay instead of executing. Records appended by THIS
      // scheduler are deliberately absent — resubmitting an index it
      // already ran is a caller bug and is rejected in submit().
      for (const SuiteRecord& record : this->options.journal->replayed())
        replay.emplace(record.index, record);
    }
  }

  void launch_locked(std::shared_ptr<PointState> state) {
    group.submit(util::Task(
        [this, state = std::move(state)] { run_point(*state); }));
  }

  void run_point(PointState& state);

  Options options;
  util::Executor* executor;
  unsigned jobs;
  util::TaskGroup group;

  // Recursive: the progress callback runs under it (serialized, like the
  // old suite runner) and is explicitly allowed to submit() the next
  // adaptive points reentrantly. It must not block on handles or
  // wait_all() — that would stall every other finishing point.
  mutable std::recursive_mutex mutex;
  std::deque<std::shared_ptr<PointState>> queue;
  std::unordered_map<std::size_t, SuiteRecord> replay;
  // Single-flight bookkeeping (sim_cache and/or sim_store): fingerprints
  // currently owned by a leading point, and the same-fingerprint siblings
  // parked off the queue until their group's entry is committed.
  std::unordered_set<std::string> leaders;
  std::unordered_map<std::string, std::vector<std::shared_ptr<PointState>>>
      parked;
  unsigned in_flight = 0;
  std::size_t fresh_submitted = 0;
  std::size_t fresh_completed = 0;
  std::size_t next_index = 0;
};

void SweepScheduler::Impl::run_point(PointState& state) {
  const SuiteEntry& entry = state.entry;
  SuiteOutcome outcome;
  outcome.index = state.index;
  outcome.path = entry.path;
  outcome.name = entry.spec.name;
  // The fingerprint rides in every outcome/record (hits are verifiable
  // from sweep artifacts); submit() already computed it when a cache is
  // active.
  if (state.fingerprint.empty())
    state.fingerprint = simulation_fingerprint(entry.spec);
  outcome.fingerprint = state.fingerprint;
  const auto start = std::chrono::steady_clock::now();
  const unsigned max_attempts = 1 + options.retries;
  RunScenarioOptions run_options;
  run_options.sim_cache = options.sim_cache;
  run_options.sim_store = options.sim_store;
  AttemptOutcome last;
  unsigned attempt = 1;
  for (;; ++attempt) {
    ScenarioSpec spec = entry.spec;  // fresh-attempt isolation
    if (options.threads_per_scenario != 0)
      spec.threads = options.threads_per_scenario;
    last = execute_attempt(std::move(spec), outcome.index, attempt,
                           options.soft_deadline_seconds, options.fault_hook,
                           run_options);
    if (last.ok || attempt >= max_attempts) break;
  }
  outcome.ok = last.ok;
  outcome.timed_out = last.timed_out;
  outcome.attempts = attempt;
  outcome.error = std::move(last.error);
  outcome.result = std::move(last.result);
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  SuiteRecord record = make_suite_record(outcome);
  // Durability before reporting: once the handle or the progress callback
  // announces a point, a crash right after must still find it journaled.
  // A journal write failure still completes the handle (the outcome is
  // valid) before the error propagates to wait_all().
  std::exception_ptr journal_error;
  if (options.journal != nullptr) {
    try {
      options.journal->append(record);
    } catch (...) {
      journal_error = std::current_exception();
    }
  }
  const bool point_ok = outcome.ok;
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.outcome = std::move(outcome);
    state.record = std::move(record);
    state.done = true;
  }
  state.cv.notify_all();
  {
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    ++fresh_completed;
    if (options.progress) {
      // Serialized by `mutex`, like the suite runner's progress path.
      SuiteProgress progress;
      progress.completed = fresh_completed;
      progress.total = options.expected_total != 0 ? options.expected_total
                                                   : fresh_submitted;
      progress.outcome = &*state.outcome;
      options.progress(progress);
    }
    // Single-flight release: this point led its fingerprint group. On
    // success the shared entry is committed — every parked sibling goes
    // to the queue front (in submission order) to evaluate against it.
    // On failure the entry may not exist, so the first sibling is
    // promoted to leader (queue front, fingerprint stays owned) and the
    // rest wait on — one simulation per fingerprint survives failures.
    // Releases happen inside this still-counted task, so wait_all()'s
    // group.wait() covers released points with no extra machinery.
    if (state.leads) {
      const auto found = parked.find(state.fingerprint);
      if (found == parked.end()) {
        leaders.erase(state.fingerprint);
      } else if (point_ok) {
        for (auto sibling = found->second.rbegin();
             sibling != found->second.rend(); ++sibling)
          queue.push_front(std::move(*sibling));
        parked.erase(found);
        leaders.erase(state.fingerprint);
      } else {
        std::shared_ptr<PointState> promoted =
            std::move(found->second.front());
        found->second.erase(found->second.begin());
        if (found->second.empty()) parked.erase(found);
        promoted->leads = true;
        queue.push_front(std::move(promoted));
      }
    }
    // Admission chain: the next queued point is launched from inside this
    // still-counted task, so the group's pending count never drops to
    // zero while queued work remains. The top-up loop re-fills the
    // admission budget when a release just grew the queue while other
    // slots sat idle.
    if (!queue.empty()) {
      std::shared_ptr<PointState> next = std::move(queue.front());
      queue.pop_front();
      launch_locked(std::move(next));
    } else {
      --in_flight;
    }
    while (in_flight < jobs && !queue.empty()) {
      ++in_flight;
      std::shared_ptr<PointState> next = std::move(queue.front());
      queue.pop_front();
      launch_locked(std::move(next));
    }
  }
  if (journal_error) std::rethrow_exception(journal_error);
}

SweepScheduler::SweepScheduler(Options options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SweepScheduler::~SweepScheduler() {
  // ~Impl runs ~TaskGroup, which waits for stragglers (errors discarded).
}

SweepScheduler::Handle SweepScheduler::submit_locked(SuiteEntry entry,
                                                     std::size_t global_index) {
  auto state = std::make_shared<PointState>();
  state->index = global_index;
  state->entry = std::move(entry);
  state->executor = impl_->executor;
  if (impl_->next_index <= global_index) impl_->next_index = global_index + 1;
  if (impl_->options.journal != nullptr &&
      impl_->options.journal->completed(global_index)) {
    const auto found = impl_->replay.find(global_index);
    if (found == impl_->replay.end())
      throw std::invalid_argument(
          "sweep point " + std::to_string(global_index) +
          " was already run by this scheduler; each index may be submitted "
          "once");
    state->replayed = true;
    state->done = true;
    state->record = found->second;
    return Handle(std::move(state));
  }
  ++impl_->fresh_submitted;
  if (impl_->options.sim_cache != nullptr ||
      impl_->options.sim_store != nullptr) {
    // Single-flight grouping: the first point of a fingerprint whose
    // entry is not committed in any tier yet leads (it simulates, and
    // with a store, durably publishes); later same-fingerprint
    // submissions park behind it and are released — straight to cache or
    // store hits — when it completes. Already-committed fingerprints run
    // normally (eviction before they run just costs a redundant
    // simulation, caught by the cache's first-wins insert / the store's
    // atomic rename).
    state->fingerprint = simulation_fingerprint(state->entry.spec);
    if (impl_->leaders.contains(state->fingerprint)) {
      impl_->parked[state->fingerprint].push_back(state);
      return Handle(std::move(state));
    }
    const bool committed =
        (impl_->options.sim_cache != nullptr &&
         impl_->options.sim_cache->contains(state->fingerprint)) ||
        (impl_->options.sim_store != nullptr &&
         impl_->options.sim_store->contains(state->fingerprint));
    if (!committed) {
      impl_->leaders.insert(state->fingerprint);
      state->leads = true;
    }
  }
  if (impl_->in_flight < impl_->jobs) {
    ++impl_->in_flight;
    impl_->launch_locked(state);
  } else {
    impl_->queue.push_back(state);
  }
  return Handle(std::move(state));
}

SweepScheduler::Handle SweepScheduler::submit(SuiteEntry entry,
                                              std::size_t global_index) {
  const std::lock_guard<std::recursive_mutex> lock(impl_->mutex);
  return submit_locked(std::move(entry), global_index);
}

SweepScheduler::Handle SweepScheduler::submit(ScenarioSpec spec) {
  SuiteEntry entry;
  entry.path = "<" + spec.name + ">";
  entry.spec = std::move(spec);
  const std::lock_guard<std::recursive_mutex> lock(impl_->mutex);
  return submit_locked(std::move(entry), impl_->next_index);
}

void SweepScheduler::wait_all() { impl_->group.wait(); }

std::size_t SweepScheduler::submitted() const {
  const std::lock_guard<std::recursive_mutex> lock(impl_->mutex);
  return impl_->fresh_submitted;
}

std::size_t SweepScheduler::completed() const {
  const std::lock_guard<std::recursive_mutex> lock(impl_->mutex);
  return impl_->fresh_completed;
}

}  // namespace dnnlife::core
