// Write Data Encoder / Read Data Decoder behavioural models (paper Fig. 8).
//
// The WDE XORs the outgoing row with the enable signal E replicated across
// all bits; the RDD is the identical structure applied on the read path
// with the stored E, so decode(encode(x, e), e) == x for every word. The
// gate-level versions live in hw/wde_modules.*; these behavioural models
// are what the simulators use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace dnnlife::core {

/// XOR-with-enable transducer over a row of `row_bits` bits stored as
/// little-endian 64-bit words. Encoder and decoder are the same function.
class XorTransducer {
 public:
  explicit XorTransducer(std::uint32_t row_bits);

  std::uint32_t row_bits() const noexcept { return row_bits_; }

  /// In-place transform: XOR every payload bit with `enable`. Bits above
  /// row_bits stay zero.
  void apply(std::span<std::uint64_t> words, bool enable) const;

  /// Out-of-place convenience.
  std::vector<std::uint64_t> transform(std::span<const std::uint64_t> words,
                                       bool enable) const;

 private:
  std::uint32_t row_bits_;
  std::uint32_t full_words_;
  std::uint64_t tail_mask_;
};

/// Barrel-rotation transducer: rotates each `word_bits`-wide weight subword
/// of the row left by `amount` (the [15]-style baseline; the decoder
/// rotates right by the same amount).
class RotateTransducer {
 public:
  RotateTransducer(std::uint32_t row_bits, std::uint32_t word_bits);

  std::uint32_t row_bits() const noexcept { return row_bits_; }
  std::uint32_t word_bits() const noexcept { return word_bits_; }

  std::vector<std::uint64_t> rotate_row(std::span<const std::uint64_t> words,
                                        unsigned amount, bool left) const;

  /// Rotate into a caller-provided buffer (no allocation — the simulators'
  /// per-write hot path). `out` must have words_per_row entries and must
  /// not alias `words`.
  void rotate_row_into(std::span<const std::uint64_t> words, unsigned amount,
                       bool left, std::span<std::uint64_t> out) const;

 private:
  std::uint32_t row_bits_;
  std::uint32_t word_bits_;
};

}  // namespace dnnlife::core
