#include "core/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "core/fast_simulator.hpp"
#include "core/reference_simulator.hpp"
#include "dnn/model_zoo.hpp"
#include "util/executor.hpp"

namespace dnnlife::core {

std::string to_string(HardwareKind kind) {
  switch (kind) {
    case HardwareKind::kBaseline: return "baseline-accelerator";
    case HardwareKind::kTpuNpu: return "tpu-like-npu";
  }
  return "unknown";
}

HardwareKind hardware_kind_from_string(std::string_view name) {
  for (const HardwareKind kind : {HardwareKind::kBaseline, HardwareKind::kTpuNpu}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument(
      "unknown hardware kind '" + std::string(name) +
      "' (expected one of: baseline-accelerator, tpu-like-npu)");
}

aging::AgingReport run_policies_on_stream(
    const sim::WriteStream& stream, const RegionPolicyTable& policies,
    const aging::AgingModel& model, const aging::AgingReportOptions& report,
    const StreamRunOptions& options) {
  if (options.use_reference_simulator) {
    ReferenceSimOptions reference;
    reference.inferences = options.inferences;
    reference.verify_decode = false;
    const auto tracker = simulate_reference(stream, policies, reference);
    return make_aging_report(tracker, model, report);
  }
  FastSimOptions fast;
  fast.inferences = options.inferences;
  fast.threads = options.simulator_threads;
  const auto tracker = simulate_fast(stream, policies, fast);
  return make_aging_report(tracker, model, report);
}

aging::AgingReport run_policy_on_stream(const sim::WriteStream& stream,
                                        const PolicyConfig& policy,
                                        const aging::AgingModel& model,
                                        const aging::AgingReportOptions& report,
                                        const StreamRunOptions& options) {
  return run_policies_on_stream(
      stream, RegionPolicyTable::uniform(stream.geometry(), policy), model,
      report, options);
}

Workbench::Workbench(const ExperimentConfig& config) : config_(config) {
  network_ = std::make_unique<dnn::Network>(dnn::make_network(config.network));
  streamer_ = std::make_unique<dnn::WeightStreamer>(*network_, config.weights);
  codec_ = std::make_unique<quant::WeightWordCodec>(*streamer_, config.format);
  switch (config.hardware) {
    case HardwareKind::kBaseline:
      stream_ = std::make_unique<sim::BaselineWeightStream>(*codec_,
                                                            config.baseline);
      break;
    case HardwareKind::kTpuNpu:
      stream_ = std::make_unique<sim::NpuWeightStream>(*codec_, config.npu);
      break;
  }
  model_ = aging::make_aging_model(config.aging_model, config.snm,
                                   config.aging_model_params);
  aging::validate_environment(config.environment);
}

aging::AgingReport Workbench::evaluate(PolicyConfig policy) const {
  // The barrel shifter rotates at weight-word granularity.
  policy.weight_bits = codec_->bits();
  const aging::EnvironmentBoundModel model(*model_, config_.environment);
  StreamRunOptions options;
  options.inferences = config_.inferences;
  options.use_reference_simulator = config_.use_reference_simulator;
  options.simulator_threads = config_.simulator_threads;
  return run_policy_on_stream(*stream_, policy, model, config_.report, options);
}

aging::AgingReport Workbench::evaluate_regions(
    const RegionPolicyTable& policies) const {
  const aging::EnvironmentBoundModel model(*model_, config_.environment);
  StreamRunOptions options;
  options.inferences = config_.inferences;
  options.use_reference_simulator = config_.use_reference_simulator;
  options.simulator_threads = config_.simulator_threads;
  return run_policies_on_stream(*stream_, policies, model, config_.report,
                                options);
}

RegionPolicyTable Workbench::region_table(
    const std::vector<std::pair<std::string, double>>& fractions,
    std::vector<PolicyConfig> policies) const {
  for (PolicyConfig& policy : policies) policy.weight_bits = codec_->bits();
  return RegionPolicyTable(
      sim::MemoryRegionMap::from_fractions(stream_->geometry(), fractions),
      std::move(policies));
}

std::vector<aging::AgingReport> Workbench::evaluate_all(
    std::span<const PolicyConfig> policies, unsigned threads) const {
  std::vector<aging::AgingReport> reports;
  if (policies.empty()) return reports;
  const auto n = static_cast<unsigned>(policies.size());
  threads = util::resolve_thread_count(threads);
  if (threads > n) threads = n;
  // AgingReport is not default-constructible (a report always has a
  // histogram geometry), so tasks fill optional slots that are unwrapped
  // after the join.
  std::vector<std::optional<aging::AgingReport>> slots(policies.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < policies.size(); ++i)
      slots[i].emplace(evaluate(policies[i]));
  } else {
    // One bulk submission over the policy indices with `threads` as the
    // concurrency budget on the session executor. Slots are disjoint, so
    // no synchronisation beyond wait() is needed.
    util::TaskGroup group;
    group.submit_items(policies.size(), threads, [this, &policies, &slots](
                                                     std::size_t i) {
      slots[i].emplace(evaluate(policies[i]));
    });
    group.wait();
  }
  reports.reserve(policies.size());
  for (auto& slot : slots) reports.push_back(std::move(*slot));
  return reports;
}

aging::AgingReport run_aging_experiment(const ExperimentConfig& config) {
  return Workbench(config).evaluate(config.policy);
}

}  // namespace dnnlife::core
