#include "core/experiment.hpp"

#include <optional>

#include "core/fast_simulator.hpp"
#include "core/reference_simulator.hpp"
#include "dnn/model_zoo.hpp"
#include "util/parallel.hpp"

namespace dnnlife::core {

std::string to_string(HardwareKind kind) {
  switch (kind) {
    case HardwareKind::kBaseline: return "baseline-accelerator";
    case HardwareKind::kTpuNpu: return "tpu-like-npu";
  }
  return "unknown";
}

aging::AgingReport run_policy_on_stream(const sim::WriteStream& stream,
                                        const PolicyConfig& policy,
                                        unsigned inferences,
                                        const aging::AgingModel& model,
                                        const aging::AgingReportOptions& report,
                                        bool use_reference_simulator,
                                        unsigned simulator_threads) {
  if (use_reference_simulator) {
    ReferenceSimOptions options;
    options.inferences = inferences;
    options.verify_decode = false;
    const auto tracker = simulate_reference(stream, policy, options);
    return make_aging_report(tracker, model, report);
  }
  FastSimOptions options;
  options.inferences = inferences;
  options.threads = simulator_threads;
  const auto tracker = simulate_fast(stream, policy, options);
  return make_aging_report(tracker, model, report);
}

Workbench::Workbench(const ExperimentConfig& config) : config_(config) {
  network_ = std::make_unique<dnn::Network>(dnn::make_network(config.network));
  streamer_ = std::make_unique<dnn::WeightStreamer>(*network_, config.weights);
  codec_ = std::make_unique<quant::WeightWordCodec>(*streamer_, config.format);
  switch (config.hardware) {
    case HardwareKind::kBaseline:
      stream_ = std::make_unique<sim::BaselineWeightStream>(*codec_,
                                                            config.baseline);
      break;
    case HardwareKind::kTpuNpu:
      stream_ = std::make_unique<sim::NpuWeightStream>(*codec_, config.npu);
      break;
  }
}

aging::AgingReport Workbench::evaluate(PolicyConfig policy) const {
  // The barrel shifter rotates at weight-word granularity.
  policy.weight_bits = codec_->bits();
  const aging::CalibratedSnmModel model(config_.snm);
  return run_policy_on_stream(*stream_, policy, config_.inferences, model,
                              config_.report, config_.use_reference_simulator,
                              config_.simulator_threads);
}

std::vector<aging::AgingReport> Workbench::evaluate_all(
    std::span<const PolicyConfig> policies, unsigned threads) const {
  std::vector<aging::AgingReport> reports;
  if (policies.empty()) return reports;
  const auto n = static_cast<unsigned>(policies.size());
  threads = util::resolve_thread_count(threads);
  if (threads > n) threads = n;
  // AgingReport is not default-constructible (a report always has a
  // histogram geometry), so tasks fill optional slots that are unwrapped
  // after the join.
  std::vector<std::optional<aging::AgingReport>> slots(policies.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < policies.size(); ++i)
      slots[i].emplace(evaluate(policies[i]));
  } else {
    // One task per policy; the pool drains them FIFO. Slots are disjoint,
    // so no synchronisation beyond wait() is needed.
    util::ThreadPool pool(threads);
    for (std::size_t i = 0; i < policies.size(); ++i) {
      pool.submit([this, &policies, &slots, i] {
        slots[i].emplace(evaluate(policies[i]));
      });
    }
    pool.wait();
  }
  reports.reserve(policies.size());
  for (auto& slot : slots) reports.push_back(std::move(*slot));
  return reports;
}

aging::AgingReport run_aging_experiment(const ExperimentConfig& config) {
  return Workbench(config).evaluate(config.policy);
}

}  // namespace dnnlife::core
