#include "core/experiment.hpp"

#include "core/fast_simulator.hpp"
#include "core/reference_simulator.hpp"
#include "dnn/model_zoo.hpp"

namespace dnnlife::core {

std::string to_string(HardwareKind kind) {
  switch (kind) {
    case HardwareKind::kBaseline: return "baseline-accelerator";
    case HardwareKind::kTpuNpu: return "tpu-like-npu";
  }
  return "unknown";
}

aging::AgingReport run_policy_on_stream(const sim::WriteStream& stream,
                                        const PolicyConfig& policy,
                                        unsigned inferences,
                                        const aging::AgingModel& model,
                                        const aging::AgingReportOptions& report,
                                        bool use_reference_simulator) {
  if (use_reference_simulator) {
    ReferenceSimOptions options;
    options.inferences = inferences;
    options.verify_decode = false;
    const auto tracker = simulate_reference(stream, policy, options);
    return make_aging_report(tracker, model, report);
  }
  FastSimOptions options;
  options.inferences = inferences;
  const auto tracker = simulate_fast(stream, policy, options);
  return make_aging_report(tracker, model, report);
}

Workbench::Workbench(const ExperimentConfig& config) : config_(config) {
  network_ = std::make_unique<dnn::Network>(dnn::make_network(config.network));
  streamer_ = std::make_unique<dnn::WeightStreamer>(*network_, config.weights);
  codec_ = std::make_unique<quant::WeightWordCodec>(*streamer_, config.format);
  switch (config.hardware) {
    case HardwareKind::kBaseline:
      stream_ = std::make_unique<sim::BaselineWeightStream>(*codec_,
                                                            config.baseline);
      break;
    case HardwareKind::kTpuNpu:
      stream_ = std::make_unique<sim::NpuWeightStream>(*codec_, config.npu);
      break;
  }
}

aging::AgingReport Workbench::evaluate(PolicyConfig policy) const {
  // The barrel shifter rotates at weight-word granularity.
  policy.weight_bits = codec_->bits();
  const aging::CalibratedSnmModel model(config_.snm);
  return run_policy_on_stream(*stream_, policy, config_.inferences, model,
                              config_.report, config_.use_reference_simulator);
}

aging::AgingReport run_aging_experiment(const ExperimentConfig& config) {
  return Workbench(config).evaluate(config.policy);
}

}  // namespace dnnlife::core
