// Region → policy binding for one weight memory.
//
// A RegionPolicyTable pairs a sim::MemoryRegionMap (a named partition of
// the memory's rows) with one PolicyConfig per region. It is the unit both
// simulators consume: a uniform table reproduces the paper's
// whole-memory-one-policy setup bit-identically, while a mixed table runs
// e.g. DNN-Life on hot rows and nothing on cold ones. All policies are
// validated against the geometry up front.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "aging/duty_cycle.hpp"
#include "core/policy_engine.hpp"
#include "core/transducer.hpp"
#include "sim/region_map.hpp"

namespace dnnlife::core {

class RegionPolicyTable {
 public:
  /// One policy per region of `map`, in region order.
  RegionPolicyTable(sim::MemoryRegionMap map,
                    std::vector<PolicyConfig> policies);

  /// The paper's setup: one policy across the whole memory.
  static RegionPolicyTable uniform(const sim::MemoryGeometry& geometry,
                                   PolicyConfig policy);

  const sim::MemoryRegionMap& region_map() const noexcept { return map_; }
  const sim::MemoryGeometry& geometry() const noexcept {
    return map_.geometry();
  }
  std::size_t size() const noexcept { return policies_.size(); }
  const PolicyConfig& policy(std::size_t region) const {
    return policies_.at(region);
  }
  const std::vector<PolicyConfig>& policies() const noexcept {
    return policies_;
  }

  /// A copy with every policy's seed re-derived for workload phase
  /// `stream_index` (multi-phase lifetimes draw decorrelated randomness;
  /// see core/workload.hpp).
  RegionPolicyTable with_derived_seeds(std::uint64_t stream_index) const;

  /// One freshly-constructed engine per region (replay state at origin).
  /// Regions after the first get a region-derived sub-seed, so regions
  /// sharing one configured seed still draw decorrelated randomness;
  /// region 0 keeps the raw seed (a uniform table reproduces the
  /// whole-memory path bit-identically).
  std::vector<std::unique_ptr<PolicyEngine>> make_engines() const;

  /// Shared simulator plumbing: reject a stream whose memory shape
  /// differs from the table's.
  void check_stream_geometry(const sim::MemoryGeometry& stream_geometry) const;

  /// One RotateTransducer per region whose policy weight word divides the
  /// row width (nullopt otherwise — such regions must never rotate).
  std::vector<std::optional<RotateTransducer>> make_rotators() const;

  /// The regions as aging-layer cell ranges, for tagging DutyCycleTrackers.
  std::vector<aging::CellRegion> cell_regions() const;

 private:
  sim::MemoryRegionMap map_;
  std::vector<PolicyConfig> policies_;
};

}  // namespace dnnlife::core
