#include "core/workload.hpp"

#include "core/fast_simulator.hpp"
#include "core/reference_simulator.hpp"

namespace dnnlife::core {

namespace {

/// One phase's tracker, with randomness derived from the phase's position
/// in the workload (identical for the merged and the phased paths).
aging::DutyCycleTracker simulate_phase(const WorkloadPhase& phase,
                                       const RegionPolicyTable& policies,
                                       const WorkloadOptions& options,
                                       std::size_t phase_index) {
  const RegionPolicyTable phase_policies =
      policies.with_derived_seeds(phase_index + 1);
  if (options.use_reference_simulator) {
    ReferenceSimOptions reference;
    reference.inferences = phase.inferences;
    reference.verify_decode = false;
    return simulate_reference(*phase.stream, phase_policies, reference);
  }
  FastSimOptions fast;
  fast.inferences = phase.inferences;
  fast.threads = options.threads;
  return simulate_fast(*phase.stream, phase_policies, fast);
}

void check_phases(std::span<const WorkloadPhase> phases,
                  const sim::MemoryGeometry& geometry) {
  DNNLIFE_EXPECTS(!phases.empty(), "workload needs at least one phase");
  for (const WorkloadPhase& phase : phases) {
    DNNLIFE_EXPECTS(phase.stream != nullptr, "phase without stream");
    DNNLIFE_EXPECTS(phase.stream->geometry().rows == geometry.rows &&
                        phase.stream->geometry().row_bits == geometry.row_bits,
                    "phases must share the memory geometry");
    aging::validate_environment(phase.environment);
  }
}

}  // namespace

aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const RegionPolicyTable& policies,
                                          const WorkloadOptions& options) {
  const sim::MemoryGeometry geometry = policies.geometry();
  check_phases(phases, geometry);
  aging::DutyCycleTracker combined(geometry.cells());
  combined.set_regions(policies.cell_regions());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    if (phases[p].inferences == 0) continue;  // a dormant phase ages nothing
    combined.merge(simulate_phase(phases[p], policies, options, p));
  }
  return combined;
}

aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy) {
  DNNLIFE_EXPECTS(!phases.empty() && phases.front().stream != nullptr,
                  "workload needs at least one phase");
  return simulate_workload(
      phases,
      RegionPolicyTable::uniform(phases.front().stream->geometry(), policy));
}

PhasedWorkloadResult simulate_workload_phased(
    std::span<const WorkloadPhase> phases, const RegionPolicyTable& policies,
    const WorkloadOptions& options) {
  const sim::MemoryGeometry geometry = policies.geometry();
  check_phases(phases, geometry);
  PhasedWorkloadResult result{{}, aging::DutyCycleTracker(geometry.cells())};
  result.combined.set_regions(policies.cell_regions());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    if (phases[p].inferences == 0) continue;  // a dormant phase ages nothing
    aging::DutyCycleTracker tracker =
        simulate_phase(phases[p], policies, options, p);
    result.combined.merge(tracker);
    // Consecutive active phases in the same environment share a segment:
    // duty-cycle time-averages within one operating point (the paper's
    // long-term-average model), so an all-nominal workload stays a single
    // segment and evaluates bit-identically to the legacy path.
    if (!result.segments.empty() &&
        result.segments.back().environment == phases[p].environment) {
      result.segments.back().tracker.merge(tracker);
    } else {
      result.segments.push_back(aging::EnvironmentSegment{
          std::move(tracker), phases[p].environment});
    }
  }
  return result;
}

}  // namespace dnnlife::core
