#include "core/workload.hpp"

#include "core/fast_simulator.hpp"
#include "core/reference_simulator.hpp"

namespace dnnlife::core {

aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const RegionPolicyTable& policies,
                                          const WorkloadOptions& options) {
  DNNLIFE_EXPECTS(!phases.empty(), "workload needs at least one phase");
  const sim::MemoryGeometry geometry = policies.geometry();
  aging::DutyCycleTracker combined(geometry.cells());
  combined.set_regions(policies.cell_regions());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const WorkloadPhase& phase = phases[p];
    DNNLIFE_EXPECTS(phase.stream != nullptr, "phase without stream");
    DNNLIFE_EXPECTS(phase.stream->geometry().rows == geometry.rows &&
                        phase.stream->geometry().row_bits == geometry.row_bits,
                    "phases must share the memory geometry");
    if (phase.inferences == 0) continue;  // a dormant phase ages nothing
    const RegionPolicyTable phase_policies = policies.with_derived_seeds(p + 1);
    if (options.use_reference_simulator) {
      ReferenceSimOptions reference;
      reference.inferences = phase.inferences;
      reference.verify_decode = false;
      combined.merge(
          simulate_reference(*phase.stream, phase_policies, reference));
    } else {
      FastSimOptions fast;
      fast.inferences = phase.inferences;
      fast.threads = options.threads;
      combined.merge(simulate_fast(*phase.stream, phase_policies, fast));
    }
  }
  return combined;
}

aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy) {
  DNNLIFE_EXPECTS(!phases.empty() && phases.front().stream != nullptr,
                  "workload needs at least one phase");
  return simulate_workload(
      phases,
      RegionPolicyTable::uniform(phases.front().stream->geometry(), policy));
}

}  // namespace dnnlife::core
