#include "core/workload.hpp"

#include "core/fast_simulator.hpp"
#include "util/rng.hpp"

namespace dnnlife::core {

aging::DutyCycleTracker simulate_workload(std::span<const WorkloadPhase> phases,
                                          const PolicyConfig& policy) {
  DNNLIFE_EXPECTS(!phases.empty(), "workload needs at least one phase");
  const sim::MemoryGeometry geometry = phases.front().stream->geometry();
  aging::DutyCycleTracker combined(geometry.cells());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const WorkloadPhase& phase = phases[p];
    DNNLIFE_EXPECTS(phase.stream != nullptr, "phase without stream");
    DNNLIFE_EXPECTS(phase.stream->geometry().rows == geometry.rows &&
                        phase.stream->geometry().row_bits == geometry.row_bits,
                    "phases must share the memory geometry");
    PolicyConfig phase_policy = policy;
    phase_policy.seed = util::derive_seed(policy.seed, p + 1);
    FastSimOptions options;
    options.inferences = phase.inferences;
    combined.merge(simulate_fast(*phase.stream, phase_policy, options));
  }
  return combined;
}

}  // namespace dnnlife::core
