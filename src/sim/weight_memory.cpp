#include "sim/weight_memory.hpp"

#include <algorithm>

namespace dnnlife::sim {

WeightMemory::WeightMemory(MemoryGeometry geometry) : geometry_(geometry) {
  geometry_.validate();
  storage_.assign(static_cast<std::size_t>(geometry_.rows) *
                      geometry_.words_per_row(),
                  0);
  written_.assign(geometry_.rows, 0);
}

void WeightMemory::write_row(std::uint32_t row,
                             std::span<const std::uint64_t> words) {
  DNNLIFE_EXPECTS(row < geometry_.rows, "row out of range");
  DNNLIFE_EXPECTS(words.size() == geometry_.words_per_row(), "row word count");
  std::copy(words.begin(), words.end(),
            storage_.begin() +
                static_cast<std::ptrdiff_t>(row) * geometry_.words_per_row());
  written_[row] = 1;
}

std::span<const std::uint64_t> WeightMemory::read_row(std::uint32_t row) const {
  DNNLIFE_EXPECTS(row < geometry_.rows, "row out of range");
  return std::span<const std::uint64_t>(
      storage_.data() +
          static_cast<std::size_t>(row) * geometry_.words_per_row(),
      geometry_.words_per_row());
}

bool WeightMemory::row_written(std::uint32_t row) const {
  DNNLIFE_EXPECTS(row < geometry_.rows, "row out of range");
  return written_[row] != 0;
}

bool WeightMemory::bit(std::uint32_t row, std::uint32_t column) const {
  DNNLIFE_EXPECTS(column < geometry_.row_bits, "column out of range");
  const auto word = read_row(row)[column / 64];
  return ((word >> (column % 64)) & 1u) != 0;
}

}  // namespace dnnlife::sim
