// The weight-memory write stream abstraction.
//
// One inference of a fixed network on a fixed accelerator produces a
// deterministic sequence of row writes (paper Sec. III-B: with the same
// dataflow, a cell sees only K different bits per inference). Both aging
// simulators consume this interface; the accelerator models implement it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/memory_geometry.hpp"

namespace dnnlife::sim {

/// One write of a full memory row during an inference.
struct RowWriteEvent {
  std::uint32_t row = 0;    ///< destination memory row
  std::uint32_t block = 0;  ///< mapping-slot index k within the inference
  /// Row payload, words_per_row() little-endian 64-bit words; bits above
  /// row_bits are zero.
  std::span<const std::uint64_t> words;
};

class WriteStream {
 public:
  virtual ~WriteStream() = default;

  virtual MemoryGeometry geometry() const = 0;

  /// K: the number of mapping slots (equal-residency periods) per inference.
  virtual std::uint32_t blocks_per_inference() const = 0;

  /// Total row writes per inference.
  virtual std::uint64_t writes_per_inference() const = 0;

  /// Visit every write of one inference in temporal order (block-major).
  virtual void for_each_write(
      const std::function<void(const RowWriteEvent&)>& visit) const = 0;

  /// Relative residency duration of each mapping slot. Empty (the
  /// default) means uniform durations — the paper's assumption (b). When
  /// non-empty the vector has blocks_per_inference() entries of positive
  /// weights; the simulators weight duty-cycle time by them (the
  /// compute-proportional residency extension, Sec. III-C relaxation).
  virtual std::vector<std::uint32_t> block_durations() const { return {}; }
};

/// In-memory write stream (tests and small experiments).
class VectorWriteStream final : public WriteStream {
 public:
  VectorWriteStream(MemoryGeometry geometry, std::uint32_t blocks);

  /// Append a write; blocks must be appended in non-decreasing order.
  void add_write(std::uint32_t row, std::uint32_t block,
                 std::vector<std::uint64_t> words);

  /// Override the per-block residency durations (must have blocks_per_
  /// inference() positive entries).
  void set_block_durations(std::vector<std::uint32_t> durations);
  std::vector<std::uint32_t> block_durations() const override {
    return durations_;
  }

  MemoryGeometry geometry() const override { return geometry_; }
  std::uint32_t blocks_per_inference() const override { return blocks_; }
  std::uint64_t writes_per_inference() const override { return writes_.size(); }
  void for_each_write(
      const std::function<void(const RowWriteEvent&)>& visit) const override;

  /// Statically-dispatched visitation (see sim/write_visit.hpp): identical
  /// enumeration to for_each_write without the per-event std::function.
  template <class Visitor>
  void visit_writes(Visitor&& visit) const {
    for (const auto& write : writes_) {
      visit(RowWriteEvent{write.row, write.block,
                          std::span<const std::uint64_t>(write.words)});
    }
  }

 private:
  struct StoredWrite {
    std::uint32_t row;
    std::uint32_t block;
    std::vector<std::uint64_t> words;
  };
  MemoryGeometry geometry_;
  std::uint32_t blocks_;
  std::vector<StoredWrite> writes_;
  std::vector<std::uint32_t> durations_;
};

}  // namespace dnnlife::sim
