#include "sim/region_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dnnlife::sim {

MemoryRegionMap::MemoryRegionMap(const MemoryGeometry& geometry,
                                 std::vector<MemoryRegion> regions)
    : geometry_(geometry), regions_(std::move(regions)) {
  geometry_.validate();
  DNNLIFE_EXPECTS(!regions_.empty(), "region map needs at least one region");
  std::uint32_t next_row = 0;
  for (const MemoryRegion& region : regions_) {
    DNNLIFE_EXPECTS(!region.name.empty(), "region needs a name");
    DNNLIFE_EXPECTS(region.row_begin < region.row_end,
                    "region '" + region.name + "' is empty");
    DNNLIFE_EXPECTS(region.row_begin == next_row,
                    "regions must partition the rows without gaps or "
                    "overlap (at region '" + region.name + "')");
    next_row = region.row_end;
  }
  DNNLIFE_EXPECTS(next_row == geometry_.rows,
                  "regions must cover all " + std::to_string(geometry_.rows) +
                      " rows (covered " + std::to_string(next_row) + ")");
  for (std::size_t i = 0; i < regions_.size(); ++i)
    for (std::size_t j = i + 1; j < regions_.size(); ++j)
      DNNLIFE_EXPECTS(regions_[i].name != regions_[j].name,
                      "duplicate region name '" + regions_[i].name + "'");
}

MemoryRegionMap MemoryRegionMap::whole_memory(const MemoryGeometry& geometry,
                                              std::string name) {
  return MemoryRegionMap(
      geometry, {MemoryRegion{std::move(name), 0, geometry.rows}});
}

MemoryRegionMap MemoryRegionMap::from_fractions(
    const MemoryGeometry& geometry,
    const std::vector<std::pair<std::string, double>>& fractions) {
  DNNLIFE_EXPECTS(!fractions.empty(), "region map needs at least one region");
  double total = 0.0;
  for (const auto& [name, fraction] : fractions) {
    DNNLIFE_EXPECTS(fraction > 0.0 && fraction <= 1.0,
                    "region '" + name + "' fraction must be in (0, 1]");
    total += fraction;
  }
  DNNLIFE_EXPECTS(std::abs(total - 1.0) < 1e-6,
                  "region fractions must sum to 1");
  std::vector<MemoryRegion> regions;
  regions.reserve(fractions.size());
  std::uint32_t row = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const bool last = i + 1 == fractions.size();
    auto rows = last ? geometry.rows - row
                     : static_cast<std::uint32_t>(std::llround(
                           fractions[i].second * geometry.rows));
    // Rounding must leave at least one row for this and every later region.
    const auto remaining = static_cast<std::uint32_t>(fractions.size() - 1 - i);
    DNNLIFE_EXPECTS(geometry.rows - row > remaining,
                    "memory too small for the requested region split");
    rows = std::clamp(rows, 1u, geometry.rows - row - remaining);
    regions.push_back(MemoryRegion{fractions[i].first, row, row + rows});
    row += rows;
  }
  return MemoryRegionMap(geometry, std::move(regions));
}

std::size_t MemoryRegionMap::region_of_row(std::uint32_t row) const {
  DNNLIFE_EXPECTS(row < geometry_.rows, "row out of range");
  if (regions_.size() == 1) return 0;
  // Regions are a sorted partition: the owner is the last region starting
  // at or before `row`.
  const auto it = std::upper_bound(
      regions_.begin(), regions_.end(), row,
      [](std::uint32_t r, const MemoryRegion& region) {
        return r < region.row_begin;
      });
  return static_cast<std::size_t>(it - regions_.begin()) - 1;
}

std::size_t MemoryRegionMap::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i].name == name) return i;
  throw std::invalid_argument("no region named '" + std::string(name) + "'");
}

}  // namespace dnnlife::sim
