// Access-energy model (paper Fig. 1b) and the per-inference energy
// overhead of a mitigation scheme (the paper's "minimal energy overhead"
// claim, quantified).
#pragma once

#include <cstdint>
#include <string>

#include "sim/write_stream.hpp"

namespace dnnlife::sim {

/// Access energies per 32-bit word (source: Sze et al. survey, the paper's
/// [1]; the Fig. 1b data points).
struct AccessEnergyParams {
  double sram32_pj = 5.0;    ///< 32-bit read from a 32 KB SRAM
  double dram32_pj = 640.0;  ///< 32-bit DRAM access
};

class EnergyModel {
 public:
  explicit EnergyModel(AccessEnergyParams params = {});

  const AccessEnergyParams& params() const noexcept { return params_; }

  /// Energy of accessing `bits` bits of SRAM / DRAM (linear scaling from
  /// the 32-bit reference point).
  double sram_access_pj(std::uint64_t bits) const;
  double dram_access_pj(std::uint64_t bits) const;

  /// Weight-memory write energy of one inference of `stream` (every row
  /// write charges an SRAM access of row_bits).
  double inference_weight_write_pj(const WriteStream& stream) const;

  /// Overhead energy of a transducer pair for one inference: every row
  /// write passes the encoder once and is decoded on read `reads_per_write`
  /// times (>= 1; reuse within the array reads each stored row many times,
  /// but for the weight-stationary dataflows modelled here each row is
  /// fetched once per mapping, i.e. reads_per_write = 1).
  double transducer_overhead_pj(const WriteStream& stream,
                                double encode_energy_fj_per_row,
                                double decode_energy_fj_per_row,
                                double reads_per_write = 1.0) const;

 private:
  AccessEnergyParams params_;
};

}  // namespace dnnlife::sim
