#include "sim/energy_model.hpp"

namespace dnnlife::sim {

EnergyModel::EnergyModel(AccessEnergyParams params) : params_(params) {
  DNNLIFE_EXPECTS(params_.sram32_pj > 0.0 && params_.dram32_pj > 0.0,
                  "access energies must be positive");
}

double EnergyModel::sram_access_pj(std::uint64_t bits) const {
  return params_.sram32_pj * static_cast<double>(bits) / 32.0;
}

double EnergyModel::dram_access_pj(std::uint64_t bits) const {
  return params_.dram32_pj * static_cast<double>(bits) / 32.0;
}

double EnergyModel::inference_weight_write_pj(const WriteStream& stream) const {
  const double per_row = sram_access_pj(stream.geometry().row_bits);
  return per_row * static_cast<double>(stream.writes_per_inference());
}

double EnergyModel::transducer_overhead_pj(const WriteStream& stream,
                                           double encode_energy_fj_per_row,
                                           double decode_energy_fj_per_row,
                                           double reads_per_write) const {
  DNNLIFE_EXPECTS(reads_per_write >= 0.0, "negative read rate");
  const double writes = static_cast<double>(stream.writes_per_inference());
  const double fj = writes * (encode_energy_fj_per_row +
                              reads_per_write * decode_energy_fj_per_row);
  return fj / 1000.0;  // fJ -> pJ
}

}  // namespace dnnlife::sim
