// TPU-like NPU model (paper Sec. V-B, Fig. 11): a 256x256 MAC array fed by
// an on-chip weight FIFO that is four tiles deep, managed as a circular
// buffer. One tile holds the weights for the whole PE array
// (256 x 256 weights); tile t lands in FIFO slot t mod depth.
//
// Table I configuration: 256 KB weight FIFO (4 tiles x 64 KB at 8-bit),
// 24 MB activation memory, f = 256.
#pragma once

#include <cstdint>

#include "quant/word_codec.hpp"
#include "sim/dataflow.hpp"
#include "sim/row_packing.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::sim {

struct TpuNpuConfig {
  std::uint32_t array_dim = 256;  ///< PE array is array_dim x array_dim
  std::uint32_t fifo_tiles = 4;   ///< FIFO depth in tiles
  std::uint64_t activation_memory_bytes = 24 * 1024 * 1024;
  /// Memoise packed row payloads on first visitation (thread-safe; see
  /// BaselineAcceleratorConfig::cache_encoded_rows).
  bool cache_encoded_rows = true;

  /// Rows of one tile (one row per PE-array row).
  std::uint32_t tile_rows() const noexcept { return array_dim; }
};

class NpuWeightStream final : public WriteStream {
 public:
  NpuWeightStream(const quant::WeightWordCodec& codec, TpuNpuConfig config = {});

  MemoryGeometry geometry() const override { return geometry_; }
  /// One mapping slot per tile streamed through the FIFO.
  std::uint32_t blocks_per_inference() const override { return tiles_; }
  std::uint64_t writes_per_inference() const override {
    return rows_.total_rows();
  }
  void for_each_write(
      const std::function<void(const RowWriteEvent&)>& visit) const override;

  const TpuNpuConfig& config() const noexcept { return config_; }

  /// Statically-dispatched visitation (see sim/write_visit.hpp).
  template <class Visitor>
  void visit_writes(Visitor&& visit) const {
    visit_tiled_writes(rows_, *codec_, geometry_.words_per_row(),
                       config_.cache_encoded_rows, cache_,
                       [this](std::uint64_t row_index) {
                         return event_at(row_index);
                       },
                       std::forward<Visitor>(visit));
  }

 private:
  /// FIFO slot placement of the row_index-th dataflow row — a pure
  /// function of the index (circular buffer of fifo_tiles tiles).
  RowWriteEvent event_at(std::uint64_t row_index) const noexcept {
    const std::uint32_t tile_rows = config_.tile_rows();
    const auto tile = static_cast<std::uint32_t>(row_index / tile_rows);
    const std::uint32_t slot = tile % config_.fifo_tiles;
    RowWriteEvent event;
    event.row =
        slot * tile_rows + static_cast<std::uint32_t>(row_index % tile_rows);
    event.block = tile;
    return event;
  }

  const quant::WeightWordCodec* codec_;  // non-owning
  TpuNpuConfig config_;
  TiledRowSource rows_;
  MemoryGeometry geometry_;
  std::uint32_t tiles_ = 0;
  RowPayloadCache cache_;
};

}  // namespace dnnlife::sim
