// The baseline dense DNN accelerator of the paper's Sec. II-A (Fig. 4a):
// activation buffer, weight buffer, f PEs of N multipliers each. Its weight
// memory receives the Fig. 5 dataflow rows packed back-to-back; every time
// the memory fills, one mapping (block) completes.
//
// Table I configuration: 512 KB weight memory, 4 MB activation memory,
// 8 PEs x 8 multipliers (f = 8, N = 8).
#pragma once

#include <cstdint>
#include <vector>

#include "quant/word_codec.hpp"
#include "sim/dataflow.hpp"
#include "sim/row_packing.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::sim {

struct BaselineAcceleratorConfig {
  std::uint64_t weight_memory_bytes = 512 * 1024;
  std::uint64_t activation_memory_bytes = 4 * 1024 * 1024;
  std::uint32_t pe_count = 8;           ///< f: filters processed in parallel
  std::uint32_t multipliers_per_pe = 8; ///< N: weights per filter per row
  /// Weight block residency by compute time instead of the paper's
  /// equal-residency assumption (b); needs a registered input shape for
  /// the network (see dnn::default_input_shape).
  bool compute_weighted_residency = false;
  /// Ping-pong the weight memory: writes fill one half while the array
  /// reads the other (standard double buffering). Each half then sees
  /// only every other block, halving the per-cell K — a realistic
  /// configuration the paper's single-buffer model does not cover.
  bool double_buffered = false;
  /// Memoise the packed row payloads on first visitation (the write stream
  /// is identical every inference and every policy): repeat visits replay
  /// words instead of re-quantizing every weight. Costs
  /// writes_per_inference x words_per_row x 8 bytes; the build is guarded
  /// by std::call_once (see RowPayloadCache), so a cached stream may be
  /// visited from several threads concurrently — disable only for
  /// single-threaded use on networks too large to hold one inference's
  /// payloads in host memory.
  bool cache_encoded_rows = true;
};

/// Write stream of one inference on the baseline accelerator.
class BaselineWeightStream final : public WriteStream {
 public:
  BaselineWeightStream(const quant::WeightWordCodec& codec,
                       BaselineAcceleratorConfig config = {});

  MemoryGeometry geometry() const override { return geometry_; }
  std::uint32_t blocks_per_inference() const override { return blocks_; }
  std::uint64_t writes_per_inference() const override {
    return rows_.total_rows();
  }
  void for_each_write(
      const std::function<void(const RowWriteEvent&)>& visit) const override;
  std::vector<std::uint32_t> block_durations() const override {
    return durations_;
  }

  const BaselineAcceleratorConfig& config() const noexcept { return config_; }

  /// Statically-dispatched visitation (see sim/write_visit.hpp).
  template <class Visitor>
  void visit_writes(Visitor&& visit) const {
    visit_tiled_writes(rows_, *codec_, geometry_.words_per_row(),
                       config_.cache_encoded_rows, cache_,
                       [this](std::uint64_t row_index) {
                         return event_at(row_index);
                       },
                       std::forward<Visitor>(visit));
  }

 private:
  /// Destination (row, block) of the row_index-th dataflow row — a pure
  /// function of the index, so the payload cache needs no per-event
  /// metadata.
  RowWriteEvent event_at(std::uint64_t row_index) const noexcept {
    RowWriteEvent event;
    const auto block = static_cast<std::uint32_t>(row_index / image_rows_);
    const auto image_row = static_cast<std::uint32_t>(row_index % image_rows_);
    // Double buffering: odd blocks land in the upper half.
    event.row = config_.double_buffered
                    ? image_row + (block % 2) * image_rows_
                    : image_row;
    event.block = block;
    return event;
  }

  const quant::WeightWordCodec* codec_;  // non-owning
  BaselineAcceleratorConfig config_;
  TiledRowSource rows_;
  MemoryGeometry geometry_;
  std::uint32_t blocks_ = 0;
  std::uint32_t image_rows_ = 0;  ///< rows filled per mapping
  std::vector<std::uint32_t> durations_;  // empty = uniform
  RowPayloadCache cache_;
};

}  // namespace dnnlife::sim
