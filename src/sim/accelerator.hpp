// The baseline dense DNN accelerator of the paper's Sec. II-A (Fig. 4a):
// activation buffer, weight buffer, f PEs of N multipliers each. Its weight
// memory receives the Fig. 5 dataflow rows packed back-to-back; every time
// the memory fills, one mapping (block) completes.
//
// Table I configuration: 512 KB weight memory, 4 MB activation memory,
// 8 PEs x 8 multipliers (f = 8, N = 8).
#pragma once

#include <cstdint>
#include <memory>

#include "quant/word_codec.hpp"
#include "sim/dataflow.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::sim {

struct BaselineAcceleratorConfig {
  std::uint64_t weight_memory_bytes = 512 * 1024;
  std::uint64_t activation_memory_bytes = 4 * 1024 * 1024;
  std::uint32_t pe_count = 8;           ///< f: filters processed in parallel
  std::uint32_t multipliers_per_pe = 8; ///< N: weights per filter per row
  /// Weight block residency by compute time instead of the paper's
  /// equal-residency assumption (b); needs a registered input shape for
  /// the network (see dnn::default_input_shape).
  bool compute_weighted_residency = false;
  /// Ping-pong the weight memory: writes fill one half while the array
  /// reads the other (standard double buffering). Each half then sees
  /// only every other block, halving the per-cell K — a realistic
  /// configuration the paper's single-buffer model does not cover.
  bool double_buffered = false;
};

/// Write stream of one inference on the baseline accelerator.
class BaselineWeightStream final : public WriteStream {
 public:
  BaselineWeightStream(const quant::WeightWordCodec& codec,
                       BaselineAcceleratorConfig config = {});

  MemoryGeometry geometry() const override { return geometry_; }
  std::uint32_t blocks_per_inference() const override { return blocks_; }
  std::uint64_t writes_per_inference() const override {
    return rows_.total_rows();
  }
  void for_each_write(
      const std::function<void(const RowWriteEvent&)>& visit) const override;
  std::vector<std::uint32_t> block_durations() const override {
    return durations_;
  }

  const BaselineAcceleratorConfig& config() const noexcept { return config_; }

 private:
  const quant::WeightWordCodec* codec_;  // non-owning
  BaselineAcceleratorConfig config_;
  TiledRowSource rows_;
  MemoryGeometry geometry_;
  std::uint32_t blocks_ = 0;
  std::uint32_t image_rows_ = 0;  ///< rows filled per mapping
  std::vector<std::uint32_t> durations_;  // empty = uniform
};

/// Pack one dataflow row (weight-index slots) into row payload words using
/// `codec`; padding slots (-1) become zero bits. Shared by both accelerator
/// models.
void pack_row_words(const quant::WeightWordCodec& codec,
                    std::span<const std::int64_t> slots,
                    std::span<std::uint64_t> words);

}  // namespace dnnlife::sim
