#include "sim/dataflow.hpp"

namespace dnnlife::sim {

TiledRowSource::TiledRowSource(const dnn::Network& network, DataflowConfig config)
    : network_(&network), config_(config) {
  DNNLIFE_EXPECTS(config_.filters_per_set >= 1, "f must be positive");
  DNNLIFE_EXPECTS(config_.weights_per_filter_per_row >= 1, "N must be positive");
  for (std::size_t w = 0; w < network.weighted_layers().size(); ++w) {
    const auto& layer = network.layers()[network.weighted_layers()[w]];
    const std::uint64_t filters = filter_count(layer);
    const std::uint64_t wpf = layer.weight_count() / filters;
    const std::uint64_t sets = util::ceil_div(filters, config_.filters_per_set);
    const std::uint64_t rows_per_set =
        util::ceil_div(wpf, config_.weights_per_filter_per_row);
    total_rows_ += sets * rows_per_set;
  }
}

void TiledRowSource::for_each_row(
    const std::function<void(std::uint64_t, std::span<const std::int64_t>)>&
        visit) const {
  visit_rows(visit);
}

}  // namespace dnnlife::sim
