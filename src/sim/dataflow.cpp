#include "sim/dataflow.hpp"

#include <vector>

#include "util/bitops.hpp"

namespace dnnlife::sim {

namespace {

/// Filter count of a weighted layer (output channels / features).
std::uint64_t filter_count(const dnn::LayerSpec& layer) {
  return layer.kind == dnn::LayerKind::kConv ? layer.out_channels
                                             : layer.out_features;
}

}  // namespace

TiledRowSource::TiledRowSource(const dnn::Network& network, DataflowConfig config)
    : network_(&network), config_(config) {
  DNNLIFE_EXPECTS(config_.filters_per_set >= 1, "f must be positive");
  DNNLIFE_EXPECTS(config_.weights_per_filter_per_row >= 1, "N must be positive");
  for (std::size_t w = 0; w < network.weighted_layers().size(); ++w) {
    const auto& layer = network.layers()[network.weighted_layers()[w]];
    const std::uint64_t filters = filter_count(layer);
    const std::uint64_t wpf = layer.weight_count() / filters;
    const std::uint64_t sets = util::ceil_div(filters, config_.filters_per_set);
    const std::uint64_t rows_per_set =
        util::ceil_div(wpf, config_.weights_per_filter_per_row);
    total_rows_ += sets * rows_per_set;
  }
}

void TiledRowSource::for_each_row(
    const std::function<void(std::uint64_t, std::span<const std::int64_t>)>&
        visit) const {
  const std::uint32_t f = config_.filters_per_set;
  const std::uint32_t n = config_.weights_per_filter_per_row;
  std::vector<std::int64_t> slots(slots_per_row());
  std::uint64_t row_index = 0;
  const auto& network = *network_;
  for (std::size_t w = 0; w < network.weighted_layers().size(); ++w) {
    const auto& layer = network.layers()[network.weighted_layers()[w]];
    const std::uint64_t layer_base = network.weight_offset(w);
    const std::uint64_t filters = filter_count(layer);
    const std::uint64_t wpf = layer.weight_count() / filters;
    const std::uint64_t sets = util::ceil_div(filters, f);
    const std::uint64_t rows_per_set = util::ceil_div(wpf, n);
    for (std::uint64_t set = 0; set < sets; ++set) {
      for (std::uint64_t r = 0; r < rows_per_set; ++r) {
        for (std::uint32_t i = 0; i < f; ++i) {
          const std::uint64_t filter = set * f + i;
          for (std::uint32_t j = 0; j < n; ++j) {
            const std::uint64_t local = r * n + j;
            const std::size_t slot = static_cast<std::size_t>(i) * n + j;
            if (filter >= filters || local >= wpf) {
              slots[slot] = -1;
            } else {
              slots[slot] = static_cast<std::int64_t>(
                  layer_base + filter * wpf + local);
            }
          }
        }
        visit(row_index, std::span<const std::int64_t>(slots));
        ++row_index;
      }
    }
  }
  DNNLIFE_ENSURES(row_index == total_rows_, "row enumeration count mismatch");
}

}  // namespace dnnlife::sim
