// Static-dispatch front door for WriteStream visitation.
//
// The simulators' hot loops consume tens of millions of RowWriteEvents;
// funnelling every event through the virtual
// for_each_write(std::function) costs an opaque indirect call per event
// and defeats inlining of the visitor body. Each concrete stream therefore
// also exposes a templated visit_writes; this helper recovers the concrete
// type of a `const WriteStream&` for the implementations shipped in-tree
// and falls back to the virtual interface for external subclasses.
#pragma once

#include "sim/accelerator.hpp"
#include "sim/tpu_npu.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::sim {

/// Visit every write of one inference in temporal order, using the
/// concrete stream type's templated fast path when available.
template <class Visitor>
void visit_stream_writes(const WriteStream& stream, Visitor&& visit) {
  if (const auto* vec = dynamic_cast<const VectorWriteStream*>(&stream))
    return vec->visit_writes(visit);
  if (const auto* baseline =
          dynamic_cast<const BaselineWeightStream*>(&stream))
    return baseline->visit_writes(visit);
  if (const auto* npu = dynamic_cast<const NpuWeightStream*>(&stream))
    return npu->visit_writes(visit);
  stream.for_each_write([&](const RowWriteEvent& event) { visit(event); });
}

}  // namespace dnnlife::sim
