// Functional model of the on-chip weight SRAM: row-addressable storage used
// by the reference simulator and the examples (the fast simulator never
// materialises the array).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/memory_geometry.hpp"

namespace dnnlife::sim {

class WeightMemory {
 public:
  explicit WeightMemory(MemoryGeometry geometry);

  const MemoryGeometry& geometry() const noexcept { return geometry_; }

  void write_row(std::uint32_t row, std::span<const std::uint64_t> words);
  std::span<const std::uint64_t> read_row(std::uint32_t row) const;

  /// Has the row been written at least once since construction?
  bool row_written(std::uint32_t row) const;

  /// Stored bit at (row, column).
  bool bit(std::uint32_t row, std::uint32_t column) const;

 private:
  MemoryGeometry geometry_;
  std::vector<std::uint64_t> storage_;  // rows * words_per_row
  std::vector<std::uint8_t> written_;
};

}  // namespace dnnlife::sim
