#include "sim/compute_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"

namespace dnnlife::sim {

std::vector<RowCostSegment> dataflow_row_costs(const dnn::Network& network,
                                               const DataflowConfig& config,
                                               dnn::SpatialShape input) {
  const std::vector<std::uint64_t> positions =
      dnn::weighted_layer_positions(network, input);
  std::vector<RowCostSegment> segments;
  segments.reserve(positions.size());
  for (std::size_t w = 0; w < network.weighted_layers().size(); ++w) {
    const auto& layer = network.layers()[network.weighted_layers()[w]];
    const std::uint64_t filters = layer.kind == dnn::LayerKind::kConv
                                      ? layer.out_channels
                                      : layer.out_features;
    const std::uint64_t wpf = layer.weight_count() / filters;
    const std::uint64_t sets = util::ceil_div(filters, config.filters_per_set);
    const std::uint64_t rows_per_set =
        util::ceil_div(wpf, config.weights_per_filter_per_row);
    segments.push_back(
        RowCostSegment{sets * rows_per_set, static_cast<double>(positions[w])});
  }
  return segments;
}

std::vector<std::uint32_t> block_durations_from_costs(
    std::span<const RowCostSegment> segments, std::uint64_t rows_per_block,
    std::uint32_t target_mean) {
  DNNLIFE_EXPECTS(rows_per_block > 0, "rows per block");
  DNNLIFE_EXPECTS(target_mean > 0, "target mean");
  // Pass 1: per-block raw cost.
  std::vector<double> raw;
  double current = 0.0;
  std::uint64_t rows_in_block = 0;
  for (const auto& segment : segments) {
    DNNLIFE_EXPECTS(segment.cost > 0.0, "row cost must be positive");
    std::uint64_t remaining = segment.rows;
    while (remaining > 0) {
      const std::uint64_t take =
          std::min(remaining, rows_per_block - rows_in_block);
      current += static_cast<double>(take) * segment.cost;
      rows_in_block += take;
      remaining -= take;
      if (rows_in_block == rows_per_block) {
        raw.push_back(current);
        current = 0.0;
        rows_in_block = 0;
      }
    }
  }
  if (rows_in_block > 0) raw.push_back(current);
  DNNLIFE_EXPECTS(!raw.empty(), "no rows in cost segments");
  // Pass 2: quantise to positive integers with the requested mean.
  double sum = 0.0;
  for (double value : raw) sum += value;
  const double scale =
      static_cast<double>(target_mean) * static_cast<double>(raw.size()) / sum;
  std::vector<std::uint32_t> durations;
  durations.reserve(raw.size());
  for (double value : raw) {
    durations.push_back(static_cast<std::uint32_t>(
        std::max<long>(1, std::lround(value * scale))));
  }
  return durations;
}

}  // namespace dnnlife::sim
