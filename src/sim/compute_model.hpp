// Compute-time model for block residency.
//
// The paper's probabilistic analysis assumes every weight block stays
// resident for equal time (assumption (b)), while Sec. III-C notes that
// real layers take very different amounts of time. This model relaxes
// the assumption: a resident weight of a conv layer participates in
// out_h * out_w MACs (one per output position) vs 1 for a fully-connected
// layer, so a block's residency is proportional to the summed per-row
// compute of the rows it holds.
#pragma once

#include <span>
#include <vector>

#include "dnn/shapes.hpp"
#include "sim/dataflow.hpp"

namespace dnnlife::sim {

/// A run of consecutive dataflow rows sharing one per-row compute cost.
struct RowCostSegment {
  std::uint64_t rows = 0;
  double cost = 1.0;
};

/// Dataflow-ordered row costs of `network` under the Fig. 5 tiling.
/// The segment list covers exactly TiledRowSource::total_rows() rows.
std::vector<RowCostSegment> dataflow_row_costs(const dnn::Network& network,
                                               const DataflowConfig& config,
                                               dnn::SpatialShape input);

/// Slice the row costs into per-block durations (rows_per_block dataflow
/// rows per mapping), quantised to positive integers with mean ~
/// `target_mean` (small integers keep the duty-cycle accumulators well
/// inside 32 bits).
std::vector<std::uint32_t> block_durations_from_costs(
    std::span<const RowCostSegment> segments, std::uint64_t rows_per_block,
    std::uint32_t target_mean = 64);

}  // namespace dnnlife::sim
