// Shared row-payload packing and memoisation for the tiled accelerator
// write streams (baseline accelerator and TPU-like NPU). Both models
// enumerate the same Fig. 5 dataflow rows and differ only in where each
// row lands — an `event_at(row_index)` pure function — so the packing
// loop, the payload cache and the visit protocol live here once.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "quant/word_codec.hpp"
#include "sim/dataflow.hpp"
#include "sim/write_stream.hpp"

namespace dnnlife::sim {

/// Pack one dataflow row (weight-index slots) into row payload words using
/// `codec`; padding slots (-1) become zero bits.
void pack_row_words(const quant::WeightWordCodec& codec,
                    std::span<const std::int64_t> slots,
                    std::span<std::uint64_t> words);

/// call_once-guarded store of one inference's packed row payloads. The
/// build runs exactly once even when several threads visit the owning
/// stream concurrently (the Workbench's parallel policy evaluation).
class RowPayloadCache {
 public:
  template <class Build>
  const std::vector<std::uint64_t>& ensure(Build&& build) const {
    std::call_once(once_, [&] { build(payloads_); });
    return payloads_;
  }

 private:
  mutable std::once_flag once_;
  mutable std::vector<std::uint64_t> payloads_;
};

/// Visit one inference's writes of a tiled stream in dataflow order.
/// Payloads come from `cache` (built on first use, thread-safe) when
/// `use_cache`, or are re-packed on the fly; the destination (row, block)
/// of the row_index-th dataflow row is `event_at(row_index)`.
template <class EventAt, class Visitor>
void visit_tiled_writes(const TiledRowSource& rows,
                        const quant::WeightWordCodec& codec,
                        std::uint32_t words_per_row, bool use_cache,
                        const RowPayloadCache& cache, EventAt&& event_at,
                        Visitor&& visit) {
  if (use_cache) {
    const std::vector<std::uint64_t>& payloads =
        cache.ensure([&](std::vector<std::uint64_t>& out) {
          out.resize(rows.total_rows() *
                     static_cast<std::uint64_t>(words_per_row));
          rows.visit_rows([&](std::uint64_t row_index,
                              std::span<const std::int64_t> slots) {
            pack_row_words(codec, slots,
                           std::span<std::uint64_t>(
                               out.data() + row_index * words_per_row,
                               words_per_row));
          });
        });
    const std::uint64_t total = rows.total_rows();
    for (std::uint64_t row_index = 0; row_index < total; ++row_index) {
      RowWriteEvent event = event_at(row_index);
      event.words = std::span<const std::uint64_t>(
          payloads.data() + row_index * words_per_row, words_per_row);
      visit(event);
    }
    return;
  }
  std::vector<std::uint64_t> words(words_per_row);
  rows.visit_rows([&](std::uint64_t row_index,
                      std::span<const std::int64_t> slots) {
    pack_row_words(codec, slots, words);
    RowWriteEvent event = event_at(row_index);
    event.words = std::span<const std::uint64_t>(words);
    visit(event);
  });
}

}  // namespace dnnlife::sim
