#include "sim/row_packing.hpp"

#include <algorithm>

namespace dnnlife::sim {

void pack_row_words(const quant::WeightWordCodec& codec,
                    std::span<const std::int64_t> slots,
                    std::span<std::uint64_t> words) {
  std::fill(words.begin(), words.end(), 0);
  const unsigned wb = codec.bits();
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    if (slots[slot] < 0) continue;  // padding: zero bits
    const std::uint64_t value =
        codec.encode(static_cast<std::uint64_t>(slots[slot]));
    const std::size_t bit_pos = slot * wb;
    const std::size_t word = bit_pos / 64;
    const unsigned shift = bit_pos % 64;
    words[word] |= value << shift;
    if (shift + wb > 64) words[word + 1] |= value >> (64 - shift);
  }
}

}  // namespace dnnlife::sim
