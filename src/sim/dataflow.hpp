// The Fig. 5 tiled dataflow: filters of every weighted layer are divided
// into sets of f; each set's weights stream as memory rows carrying N
// consecutive weights of each of the f filters (the Fig. 4b row layout
// W1<1>..WN<1> ... W1<f>..WN<f>).
//
// Sets narrower than f and filter tails shorter than N are zero-padded
// (hardware alignment padding). The resulting global row sequence is what
// both accelerator models slice into memory mappings; packing rows until
// the memory is full realises the paper's assumption (c) ("each block ...
// fits perfectly" to the on-chip memory).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "dnn/network.hpp"

namespace dnnlife::sim {

struct DataflowConfig {
  std::uint32_t filters_per_set = 8;          ///< f
  std::uint32_t weights_per_filter_per_row = 8;  ///< N
};

/// Enumerates the dataflow's row sequence as weight indices.
class TiledRowSource {
 public:
  TiledRowSource(const dnn::Network& network, DataflowConfig config);

  const DataflowConfig& config() const noexcept { return config_; }
  /// Weight slots per row (f * N).
  std::uint32_t slots_per_row() const noexcept {
    return config_.filters_per_set * config_.weights_per_filter_per_row;
  }

  /// Total rows one inference streams through the weight memory.
  std::uint64_t total_rows() const noexcept { return total_rows_; }

  /// Visit rows in dataflow order. `slots[j]` is the global weight index in
  /// slot j, or -1 for a padding slot (stored as zero bits).
  void for_each_row(
      const std::function<void(std::uint64_t row_index,
                               std::span<const std::int64_t> slots)>& visit) const;

 private:
  const dnn::Network* network_;
  DataflowConfig config_;
  std::uint64_t total_rows_ = 0;
};

}  // namespace dnnlife::sim
