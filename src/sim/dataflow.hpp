// The Fig. 5 tiled dataflow: filters of every weighted layer are divided
// into sets of f; each set's weights stream as memory rows carrying N
// consecutive weights of each of the f filters (the Fig. 4b row layout
// W1<1>..WN<1> ... W1<f>..WN<f>).
//
// Sets narrower than f and filter tails shorter than N are zero-padded
// (hardware alignment padding). The resulting global row sequence is what
// both accelerator models slice into memory mappings; packing rows until
// the memory is full realises the paper's assumption (c) ("each block ...
// fits perfectly" to the on-chip memory).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dnn/network.hpp"
#include "util/bitops.hpp"

namespace dnnlife::sim {

struct DataflowConfig {
  std::uint32_t filters_per_set = 8;          ///< f
  std::uint32_t weights_per_filter_per_row = 8;  ///< N
};

/// Enumerates the dataflow's row sequence as weight indices.
class TiledRowSource {
 public:
  TiledRowSource(const dnn::Network& network, DataflowConfig config);

  const DataflowConfig& config() const noexcept { return config_; }
  /// Weight slots per row (f * N).
  std::uint32_t slots_per_row() const noexcept {
    return config_.filters_per_set * config_.weights_per_filter_per_row;
  }

  /// Total rows one inference streams through the weight memory.
  std::uint64_t total_rows() const noexcept { return total_rows_; }

  /// Visit rows in dataflow order. `slots[j]` is the global weight index in
  /// slot j, or -1 for a padding slot (stored as zero bits).
  void for_each_row(
      const std::function<void(std::uint64_t row_index,
                               std::span<const std::int64_t> slots)>& visit) const;

  /// Statically-dispatched variant of for_each_row: the simulators' hot
  /// loops iterate millions of rows, so the visitor is a template parameter
  /// instead of a std::function (same enumeration, zero per-row
  /// indirection).
  template <class Visitor>
  void visit_rows(Visitor&& visit) const {
    const std::uint32_t f = config_.filters_per_set;
    const std::uint32_t n = config_.weights_per_filter_per_row;
    std::vector<std::int64_t> slots(slots_per_row());
    std::uint64_t row_index = 0;
    const auto& network = *network_;
    for (std::size_t w = 0; w < network.weighted_layers().size(); ++w) {
      const auto& layer = network.layers()[network.weighted_layers()[w]];
      const std::uint64_t layer_base = network.weight_offset(w);
      const std::uint64_t filters = filter_count(layer);
      const std::uint64_t wpf = layer.weight_count() / filters;
      const std::uint64_t sets = util::ceil_div(filters, f);
      const std::uint64_t rows_per_set = util::ceil_div(wpf, n);
      for (std::uint64_t set = 0; set < sets; ++set) {
        for (std::uint64_t r = 0; r < rows_per_set; ++r) {
          for (std::uint32_t i = 0; i < f; ++i) {
            const std::uint64_t filter = set * f + i;
            for (std::uint32_t j = 0; j < n; ++j) {
              const std::uint64_t local = r * n + j;
              const std::size_t slot = static_cast<std::size_t>(i) * n + j;
              if (filter >= filters || local >= wpf) {
                slots[slot] = -1;
              } else {
                slots[slot] = static_cast<std::int64_t>(
                    layer_base + filter * wpf + local);
              }
            }
          }
          visit(row_index, std::span<const std::int64_t>(slots));
          ++row_index;
        }
      }
    }
    DNNLIFE_ENSURES(row_index == total_rows_, "row enumeration count mismatch");
  }

 private:
  /// Filter count of a weighted layer (output channels / features).
  static std::uint64_t filter_count(const dnn::LayerSpec& layer) noexcept {
    return layer.kind == dnn::LayerKind::kConv ? layer.out_channels
                                               : layer.out_features;
  }

  const dnn::Network* network_;
  DataflowConfig config_;
  std::uint64_t total_rows_ = 0;
};

}  // namespace dnnlife::sim
