#include "sim/memory_geometry.hpp"

namespace dnnlife::sim {

MemoryGeometry geometry_from_capacity(std::uint64_t capacity_bytes,
                                      std::uint32_t row_bits) {
  DNNLIFE_EXPECTS(row_bits > 0 && row_bits % 8 == 0,
                  "row width must be a whole number of bytes");
  const std::uint64_t row_bytes = row_bits / 8;
  DNNLIFE_EXPECTS(capacity_bytes >= row_bytes, "memory smaller than one row");
  MemoryGeometry geometry;
  geometry.rows = static_cast<std::uint32_t>(capacity_bytes / row_bytes);
  geometry.row_bits = row_bits;
  geometry.validate();
  return geometry;
}

}  // namespace dnnlife::sim
