#include "sim/tpu_npu.hpp"

namespace dnnlife::sim {

NpuWeightStream::NpuWeightStream(const quant::WeightWordCodec& codec,
                                 TpuNpuConfig config)
    : codec_(&codec), config_(config),
      rows_(codec.streamer().network(),
            // f = array_dim filters in parallel, one weight each per row.
            DataflowConfig{config.array_dim, 1}) {
  DNNLIFE_EXPECTS(config_.fifo_tiles >= 1, "FIFO depth");
  geometry_.rows = config_.fifo_tiles * config_.tile_rows();
  geometry_.row_bits = config_.array_dim * codec.bits();
  geometry_.validate();
  tiles_ = static_cast<std::uint32_t>(
      util::ceil_div(rows_.total_rows(), config_.tile_rows()));
  DNNLIFE_ENSURES(tiles_ >= 1, "network produced no weight rows");
}

void NpuWeightStream::for_each_write(
    const std::function<void(const RowWriteEvent&)>& visit) const {
  visit_writes(visit);
}

}  // namespace dnnlife::sim
