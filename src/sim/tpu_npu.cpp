#include "sim/tpu_npu.hpp"

#include <vector>

#include "sim/accelerator.hpp"

namespace dnnlife::sim {

NpuWeightStream::NpuWeightStream(const quant::WeightWordCodec& codec,
                                 TpuNpuConfig config)
    : codec_(&codec), config_(config),
      rows_(codec.streamer().network(),
            // f = array_dim filters in parallel, one weight each per row.
            DataflowConfig{config.array_dim, 1}) {
  DNNLIFE_EXPECTS(config_.fifo_tiles >= 1, "FIFO depth");
  geometry_.rows = config_.fifo_tiles * config_.tile_rows();
  geometry_.row_bits = config_.array_dim * codec.bits();
  geometry_.validate();
  tiles_ = static_cast<std::uint32_t>(
      util::ceil_div(rows_.total_rows(), config_.tile_rows()));
  DNNLIFE_ENSURES(tiles_ >= 1, "network produced no weight rows");
}

void NpuWeightStream::for_each_write(
    const std::function<void(const RowWriteEvent&)>& visit) const {
  std::vector<std::uint64_t> words(geometry_.words_per_row());
  const std::uint32_t tile_rows = config_.tile_rows();
  rows_.for_each_row([&](std::uint64_t row_index,
                         std::span<const std::int64_t> slots) {
    pack_row_words(*codec_, slots, words);
    const std::uint32_t tile = static_cast<std::uint32_t>(row_index / tile_rows);
    const std::uint32_t slot = tile % config_.fifo_tiles;
    RowWriteEvent event;
    event.row = slot * tile_rows + static_cast<std::uint32_t>(row_index % tile_rows);
    event.block = tile;
    event.words = std::span<const std::uint64_t>(words);
    visit(event);
  });
}

}  // namespace dnnlife::sim
