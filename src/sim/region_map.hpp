// Partition of a weight memory's rows into named regions.
//
// The paper applies one mitigation policy to the whole weight memory; real
// deployments want mixed policies per memory region (e.g. DNN-Life on the
// hot layers of one network, nothing on padding rows). A MemoryRegionMap
// names contiguous, non-overlapping row ranges that together cover the
// memory exactly; the policy layer (core::RegionPolicyTable) binds one
// policy to each region and the aging layer breaks reports out per region.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/memory_geometry.hpp"

namespace dnnlife::sim {

/// One named contiguous row range [row_begin, row_end).
struct MemoryRegion {
  std::string name;
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;  ///< exclusive

  std::uint32_t rows() const noexcept { return row_end - row_begin; }

  friend bool operator==(const MemoryRegion& a, const MemoryRegion& b) {
    return a.name == b.name && a.row_begin == b.row_begin &&
           a.row_end == b.row_end;
  }
};

/// An ordered partition of a memory's rows: regions are sorted, non-empty,
/// uniquely named and cover [0, rows) without gaps or overlap (so every
/// write has exactly one owning region).
class MemoryRegionMap {
 public:
  MemoryRegionMap(const MemoryGeometry& geometry,
                  std::vector<MemoryRegion> regions);

  /// The trivial map: one region spanning the whole memory.
  static MemoryRegionMap whole_memory(const MemoryGeometry& geometry,
                                      std::string name = "memory");

  /// Split the memory by row fractions (each in (0, 1], summing to ~1);
  /// row counts are rounded and the last region absorbs the remainder.
  static MemoryRegionMap from_fractions(
      const MemoryGeometry& geometry,
      const std::vector<std::pair<std::string, double>>& fractions);

  const MemoryGeometry& geometry() const noexcept { return geometry_; }
  std::size_t size() const noexcept { return regions_.size(); }
  const MemoryRegion& region(std::size_t index) const {
    return regions_.at(index);
  }
  const std::vector<MemoryRegion>& regions() const noexcept { return regions_; }

  /// Index of the region owning `row` (regions partition the rows, so this
  /// always resolves). O(1) for the single-region map, O(log n) otherwise.
  std::size_t region_of_row(std::uint32_t row) const;

  /// Index of the region named `name`; throws std::invalid_argument when
  /// absent.
  std::size_t index_of(std::string_view name) const;

  friend bool operator==(const MemoryRegionMap& a, const MemoryRegionMap& b) {
    return a.geometry_.rows == b.geometry_.rows &&
           a.geometry_.row_bits == b.geometry_.row_bits &&
           a.regions_ == b.regions_;
  }

 private:
  MemoryGeometry geometry_;
  std::vector<MemoryRegion> regions_;
};

}  // namespace dnnlife::sim
