#include "sim/accelerator.hpp"

#include "sim/compute_model.hpp"

namespace dnnlife::sim {

BaselineWeightStream::BaselineWeightStream(const quant::WeightWordCodec& codec,
                                           BaselineAcceleratorConfig config)
    : codec_(&codec), config_(config),
      rows_(codec.streamer().network(),
            DataflowConfig{config.pe_count, config.multipliers_per_pe}) {
  const std::uint32_t row_bits =
      config_.pe_count * config_.multipliers_per_pe * codec.bits();
  geometry_ = geometry_from_capacity(config_.weight_memory_bytes, row_bits);
  // Double buffering fills the memory half-image by half-image; the
  // geometry (the physical cells under study) is unchanged.
  image_rows_ = config_.double_buffered ? geometry_.rows / 2 : geometry_.rows;
  DNNLIFE_EXPECTS(image_rows_ >= 1, "memory too small for double buffering");
  blocks_ = static_cast<std::uint32_t>(
      util::ceil_div(rows_.total_rows(), image_rows_));
  DNNLIFE_ENSURES(blocks_ >= 1, "network produced no weight rows");
  if (config_.compute_weighted_residency) {
    const auto& network = codec.streamer().network();
    const auto segments = dataflow_row_costs(
        network, rows_.config(), dnn::default_input_shape(network.name()));
    durations_ = block_durations_from_costs(segments, image_rows_);
    DNNLIFE_ENSURES(durations_.size() == blocks_,
                    "duration/block count mismatch");
  }
}

void BaselineWeightStream::for_each_write(
    const std::function<void(const RowWriteEvent&)>& visit) const {
  visit_writes(visit);
}

}  // namespace dnnlife::sim
