#include "sim/accelerator.hpp"

#include <algorithm>
#include <vector>

#include "sim/compute_model.hpp"

namespace dnnlife::sim {

void pack_row_words(const quant::WeightWordCodec& codec,
                    std::span<const std::int64_t> slots,
                    std::span<std::uint64_t> words) {
  std::fill(words.begin(), words.end(), 0);
  const unsigned wb = codec.bits();
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    if (slots[slot] < 0) continue;  // padding: zero bits
    const std::uint64_t value =
        codec.encode(static_cast<std::uint64_t>(slots[slot]));
    const std::size_t bit_pos = slot * wb;
    const std::size_t word = bit_pos / 64;
    const unsigned shift = bit_pos % 64;
    words[word] |= value << shift;
    if (shift + wb > 64) words[word + 1] |= value >> (64 - shift);
  }
}

BaselineWeightStream::BaselineWeightStream(const quant::WeightWordCodec& codec,
                                           BaselineAcceleratorConfig config)
    : codec_(&codec), config_(config),
      rows_(codec.streamer().network(),
            DataflowConfig{config.pe_count, config.multipliers_per_pe}) {
  const std::uint32_t row_bits =
      config_.pe_count * config_.multipliers_per_pe * codec.bits();
  geometry_ = geometry_from_capacity(config_.weight_memory_bytes, row_bits);
  // Double buffering fills the memory half-image by half-image; the
  // geometry (the physical cells under study) is unchanged.
  image_rows_ = config_.double_buffered ? geometry_.rows / 2 : geometry_.rows;
  DNNLIFE_EXPECTS(image_rows_ >= 1, "memory too small for double buffering");
  blocks_ = static_cast<std::uint32_t>(
      util::ceil_div(rows_.total_rows(), image_rows_));
  DNNLIFE_ENSURES(blocks_ >= 1, "network produced no weight rows");
  if (config_.compute_weighted_residency) {
    const auto& network = codec.streamer().network();
    const auto segments = dataflow_row_costs(
        network, rows_.config(), dnn::default_input_shape(network.name()));
    durations_ = block_durations_from_costs(segments, image_rows_);
    DNNLIFE_ENSURES(durations_.size() == blocks_,
                    "duration/block count mismatch");
  }
}

void BaselineWeightStream::for_each_write(
    const std::function<void(const RowWriteEvent&)>& visit) const {
  std::vector<std::uint64_t> words(geometry_.words_per_row());
  rows_.for_each_row([&](std::uint64_t row_index,
                         std::span<const std::int64_t> slots) {
    pack_row_words(*codec_, slots, words);
    RowWriteEvent event;
    const auto block = static_cast<std::uint32_t>(row_index / image_rows_);
    const auto image_row = static_cast<std::uint32_t>(row_index % image_rows_);
    // Double buffering: odd blocks land in the upper half.
    event.row = config_.double_buffered
                    ? image_row + (block % 2) * image_rows_
                    : image_row;
    event.block = block;
    event.words = std::span<const std::uint64_t>(words);
    visit(event);
  });
}

}  // namespace dnnlife::sim
