#include "sim/write_stream.hpp"

namespace dnnlife::sim {

VectorWriteStream::VectorWriteStream(MemoryGeometry geometry, std::uint32_t blocks)
    : geometry_(geometry), blocks_(blocks) {
  geometry_.validate();
  DNNLIFE_EXPECTS(blocks >= 1, "need at least one block");
}

void VectorWriteStream::add_write(std::uint32_t row, std::uint32_t block,
                                  std::vector<std::uint64_t> words) {
  DNNLIFE_EXPECTS(row < geometry_.rows, "row out of range");
  DNNLIFE_EXPECTS(block < blocks_, "block out of range");
  DNNLIFE_EXPECTS(words.size() == geometry_.words_per_row(), "row word count");
  DNNLIFE_EXPECTS(writes_.empty() || writes_.back().block <= block,
                  "writes must be block-ordered");
  const std::uint32_t tail_bits = geometry_.row_bits % 64;
  if (tail_bits != 0) {
    DNNLIFE_EXPECTS((words.back() & ~util::low_mask(tail_bits)) == 0,
                    "payload bits above row width");
  }
  writes_.push_back(StoredWrite{row, block, std::move(words)});
}

void VectorWriteStream::set_block_durations(std::vector<std::uint32_t> durations) {
  DNNLIFE_EXPECTS(durations.size() == blocks_, "one duration per block");
  for (std::uint32_t d : durations)
    DNNLIFE_EXPECTS(d > 0, "durations must be positive");
  durations_ = std::move(durations);
}

void VectorWriteStream::for_each_write(
    const std::function<void(const RowWriteEvent&)>& visit) const {
  visit_writes(visit);
}

}  // namespace dnnlife::sim
