// Geometry of an on-chip weight memory: I rows x J bit-columns of 6T cells.
#pragma once

#include <cstdint>

#include "util/bitops.hpp"

namespace dnnlife::sim {

struct MemoryGeometry {
  std::uint32_t rows = 0;
  std::uint32_t row_bits = 0;

  /// Total number of 6T cells (I x J in the paper's notation).
  std::uint64_t cells() const noexcept {
    return static_cast<std::uint64_t>(rows) * row_bits;
  }

  /// 64-bit words needed to hold one row.
  std::uint32_t words_per_row() const noexcept {
    return static_cast<std::uint32_t>(util::ceil_div(row_bits, 64));
  }

  /// Capacity in bytes (row_bits need not be byte-aligned; rounds down
  /// per-row like a real array would not — geometry rows*row_bits is exact).
  std::uint64_t capacity_bits() const noexcept { return cells(); }

  /// Flat cell index of (row, bit).
  std::uint64_t cell_index(std::uint32_t row, std::uint32_t bit) const {
    DNNLIFE_EXPECTS(row < rows && bit < row_bits, "cell out of range");
    return static_cast<std::uint64_t>(row) * row_bits + bit;
  }

  void validate() const {
    DNNLIFE_EXPECTS(rows > 0, "memory needs rows");
    DNNLIFE_EXPECTS(row_bits > 0, "memory needs columns");
  }
};

/// Geometry from a byte capacity and a row width in bits.
MemoryGeometry geometry_from_capacity(std::uint64_t capacity_bytes,
                                      std::uint32_t row_bits);

}  // namespace dnnlife::sim
