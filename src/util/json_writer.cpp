#include "util/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dnnlife::util {

std::string json_number_repr(double value) {
  if (!std::isfinite(value))
    throw std::invalid_argument(
        "JSON cannot represent a non-finite number (inf/nan)");
  // std::to_chars with no precision argument emits the shortest string
  // that round-trips to exactly `value` — deterministic, locale-free, and
  // identical on every conforming implementation.
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  if (result.ec != std::errc{})
    throw std::invalid_argument("number formatting failed");
  return std::string(buffer, result.ptr);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_value(const JsonValue& value, int indent, int depth,
                 std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(levels) *
                   static_cast<std::size_t>(indent),
               ' ');
  };
  switch (value.type()) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::kNumber: out += json_number_repr(value.as_number()); break;
    case JsonValue::Type::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      const auto& items = value.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        write_value(items[i], indent, depth + 1, out);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      const auto& members = value.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += json_escape(members[i].first);
        out += "\":";
        if (pretty) out += ' ';
        write_value(members[i].second, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string write_json(const JsonValue& value, const JsonWriteOptions& options) {
  std::string out;
  write_value(value, options.indent, 0, out);
  if (options.indent >= 0) out += '\n';
  return out;
}

}  // namespace dnnlife::util
