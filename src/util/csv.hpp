// CSV writer for experiment outputs (machine-readable companion to the
// ASCII tables the benches print).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dnnlife::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a data row; must match the header arity.
  void add_row(const std::vector<std::string>& row);

  /// Quote a field per RFC 4180 if it contains separators/quotes/newlines.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace dnnlife::util
