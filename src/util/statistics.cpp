#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dnnlife::util {

void RunningStats::add(double value, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  // Weighted Welford update (West 1979).
  const double w = static_cast<double>(weight);
  const double total = static_cast<double>(count_) + w;
  const double delta = value - mean_;
  mean_ += delta * (w / total);
  m2_ += delta * (value - mean_) * w;
  count_ += weight;
}

double RunningStats::variance() const noexcept {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * (n2 / (n1 + n2));
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double sorted_quantile(std::span<const double> sorted, double q) {
  DNNLIFE_EXPECTS(!sorted.empty(), "quantile of empty sample");
  DNNLIFE_EXPECTS(q >= 0.0 && q <= 1.0, "quantile order out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return sorted_quantile(copy, q);
}

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  DNNLIFE_EXPECTS(x.size() == y.size(), "correlation input sizes differ");
  DNNLIFE_EXPECTS(x.size() >= 2, "correlation needs >= 2 points");
  RunningStats sx;
  RunningStats sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  cov /= static_cast<double>(x.size());
  const double denom = sx.stddev() * sy.stddev();
  DNNLIFE_EXPECTS(denom > 0.0, "correlation of constant series");
  return cov / denom;
}

}  // namespace dnnlife::util
