// Tiny shared CLI flag parsing helpers for the example/bench executables.
#pragma once

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dnnlife::util {

/// Match `--<name>=<value>` flags: true (filling `value`) on a match.
inline bool flag_value(const std::string& arg, const std::string& name,
                       std::string& value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

/// Slurp a whole file; throws std::invalid_argument naming the path.
inline std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Parse a non-negative decimal flag value into `out`. Returns false (and
/// leaves `out` untouched) on empty input, non-digit characters, or
/// overflow — callers print their own usage message instead of letting
/// std::stoul terminate the process.
inline bool parse_unsigned_flag(const std::string& text, unsigned& out) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    const unsigned long value = std::stoul(text);
    if (value > static_cast<unsigned long>(~0u)) return false;
    out = static_cast<unsigned>(value);
  } catch (const std::exception&) {
    return false;  // out_of_range on absurdly long digit strings
  }
  return true;
}

/// Parse a finite decimal flag value (e.g. --deadline=2.5) into `out`.
/// Returns false (leaving `out` untouched) on empty input, trailing
/// garbage, or a non-finite result.
inline bool parse_double_flag(const std::string& text, double& out) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !std::isfinite(value)) return false;
    out = value;
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace dnnlife::util
