// Tiny shared CLI flag parsing helpers for the example/bench executables.
#pragma once

#include <cmath>
#include <cstddef>
#include <fstream>
#include <stdexcept>
#include <string>

namespace dnnlife::util {

/// Match `--<name>=<value>` flags: true (filling `value`) on a match.
inline bool flag_value(const std::string& arg, const std::string& name,
                       std::string& value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

/// Slurp a whole file; throws std::invalid_argument naming the path —
/// both when it cannot be opened and when the stream goes bad mid-read.
/// The old rdbuf-slurp returned whatever prefix had been read before an
/// I/O error, so a failing disk handed callers a silently truncated
/// document (e.g. half a scenario) as if it were complete.
inline std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::invalid_argument("cannot open '" + path + "'");
  std::string contents;
  char chunk[1 << 16];
  while (file.read(chunk, sizeof chunk))
    contents.append(chunk, sizeof chunk);
  contents.append(chunk, static_cast<std::size_t>(file.gcount()));
  // eof alone is the normal exit; badbit means the read itself failed.
  if (file.bad())
    throw std::invalid_argument("error while reading '" + path +
                                "': stream failed mid-read");
  return contents;
}

/// Parse a non-negative decimal flag value into `out`. Returns false (and
/// leaves `out` untouched) on empty input, non-digit characters, or
/// overflow — callers print their own usage message instead of letting
/// std::stoul terminate the process.
inline bool parse_unsigned_flag(const std::string& text, unsigned& out) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    const unsigned long value = std::stoul(text);
    if (value > static_cast<unsigned long>(~0u)) return false;
    out = static_cast<unsigned>(value);
  } catch (const std::exception&) {
    return false;  // out_of_range on absurdly long digit strings
  }
  return true;
}

/// Parse a finite decimal flag value (e.g. --deadline=2.5) into `out`.
/// Returns false (leaving `out` untouched) on empty input, trailing
/// garbage, or a non-finite result.
inline bool parse_double_flag(const std::string& text, double& out) {
  if (text.empty()) return false;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !std::isfinite(value)) return false;
    out = value;
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace dnnlife::util
