// Tiny shared CLI flag parsing helpers for the example/bench executables.
#pragma once

#include <stdexcept>
#include <string>

namespace dnnlife::util {

/// Parse a non-negative decimal flag value into `out`. Returns false (and
/// leaves `out` untouched) on empty input, non-digit characters, or
/// overflow — callers print their own usage message instead of letting
/// std::stoul terminate the process.
inline bool parse_unsigned_flag(const std::string& text, unsigned& out) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    const unsigned long value = std::stoul(text);
    if (value > static_cast<unsigned long>(~0u)) return false;
    out = static_cast<unsigned>(value);
  } catch (const std::exception&) {
    return false;  // out_of_range on absurdly long digit strings
  }
  return true;
}

}  // namespace dnnlife::util
