// Deterministic random number generation.
//
// Two generators are provided:
//  * Xoshiro256ss  — a fast sequential PRNG used where a stream is natural
//    (policy simulation, TRBG models).
//  * CounterRng    — a counter-based ("random access") generator: the value
//    at index i is a pure function hash(seed, i). This lets the weight
//    streamer produce the i-th weight of a 138M-parameter network without
//    materialising the whole tensor, and guarantees the same weights
//    regardless of traversal order.
//
// All distributions here are deterministic given (seed, index) and are
// independent of the C++ standard library's unspecified distribution
// implementations, so results are reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace dnnlife::util {

/// SplitMix64 step: the canonical 64-bit finaliser used for seeding and as
/// the mixing function of CounterRng.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit PRNG.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x5eedULL) noexcept;

  /// Next 64 uniformly random bits.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Bernoulli draw with probability `p` of true.
  bool next_bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (caches the second deviate).
  double next_gaussian() noexcept;

  /// Laplace(0, scale) via inverse CDF.
  double next_laplace(double scale) noexcept;

  /// Binomial(n, p) draw. Exact (sum of Bernoullis) for small n, normal
  /// approximation with continuity correction and clamping for large n.
  std::uint64_t next_binomial(std::uint64_t n, double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Counter-based generator: value_at(i) = mix(seed, i). Stateless reads.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// 64 random bits for index `i`.
  std::uint64_t bits_at(std::uint64_t i) const noexcept {
    return splitmix64(splitmix64(seed_ ^ 0x243f6a8885a308d3ULL) + i);
  }

  /// Uniform double in [0, 1) for index `i`.
  double double_at(std::uint64_t i) const noexcept {
    return static_cast<double>(bits_at(i) >> 11) * 0x1.0p-53;
  }

  /// Standard normal for index `i` (inverse-CDF, Acklam approximation).
  double gaussian_at(std::uint64_t i) const noexcept;

  /// Laplace(0, scale) for index `i` (inverse CDF).
  double laplace_at(std::uint64_t i, double scale) const noexcept;

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). `p` must lie in (0, 1).
double inverse_normal_cdf(double p);

/// Derive a child seed from a parent seed and a stream label, so that
/// independent modules (layers, rows, policies) get decorrelated streams.
constexpr std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  return splitmix64(parent ^ splitmix64(stream * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL));
}

}  // namespace dnnlife::util
