// Streaming and batch summary statistics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dnnlife::util {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
 public:
  void add(double value, std::uint64_t weight = 1) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (division by N).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel-friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (linear interpolation between order statistics).
/// `q` in [0, 1]. The input span is copied; for large inputs prefer
/// sorting once and calling `sorted_quantile`.
double quantile(std::span<const double> values, double q);

/// Quantile of an already-sorted sample.
double sorted_quantile(std::span<const double> sorted, double q);

/// Pearson correlation of two equally-sized samples.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

}  // namespace dnnlife::util
