#include "util/rng.hpp"

#include <cmath>

namespace dnnlife::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  // Seed the four state words via SplitMix64 as recommended by the authors.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = splitmix64(s);
    word = s;
  }
  // A theoretically possible all-zero state would be a fixed point.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256ss::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Xoshiro256ss::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Xoshiro256ss::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256ss::next_laplace(double scale) noexcept {
  const double u = next_double() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

std::uint64_t Xoshiro256ss::next_binomial(std::uint64_t n, double p) noexcept {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    // Exact: count successes among n Bernoulli trials, vectorised through
    // one 64-bit draw per 64-trial chunk would bias; keep per-trial draws.
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += next_double() < p ? 1u : 0u;
    return count;
  }
  if (static_cast<double>(n) * p < 30.0 || static_cast<double>(n) * (1 - p) < 30.0) {
    // Skewed tail: exact per-trial loop is still affordable for the sizes
    // this library uses (n is an inference count, typically <= 10^4).
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += next_double() < p ? 1u : 0u;
    return count;
  }
  // Normal approximation with continuity correction.
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  const double draw = std::round(mean + sd * next_gaussian());
  if (draw < 0.0) return 0;
  if (draw > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(draw);
}

double inverse_normal_cdf(double p) {
  DNNLIFE_EXPECTS(p > 0.0 && p < 1.0, "inverse_normal_cdf domain");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double q = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double CounterRng::gaussian_at(std::uint64_t i) const noexcept {
  // Map to (0,1) strictly: shift the 53-bit uniform by half a ulp.
  const double u = (static_cast<double>(bits_at(i) >> 11) + 0.5) * 0x1.0p-53;
  return inverse_normal_cdf(u);
}

double CounterRng::laplace_at(std::uint64_t i, double scale) const noexcept {
  const double u = (static_cast<double>(bits_at(i) >> 11) + 0.5) * 0x1.0p-53 - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

}  // namespace dnnlife::util
