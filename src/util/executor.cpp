#include "util/executor.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <vector>

namespace dnnlife::util {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff step: short pause bursts first, then scheduler
/// yields, before the caller finally parks on the condition variable.
inline void backoff_pause(unsigned round) noexcept {
  if (round < 5) {
    for (unsigned i = 0; i < (1u << round); ++i) cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

constexpr unsigned kBackoffRounds = 10;

/// Chase-Lev-style work-stealing deque of WorkItem pointers (Le et al.,
/// PPoPP'13). The owner pushes/pops at the bottom; any other thread steals
/// at the top. Two deliberate deviations from the textbook version:
///
///  * seq_cst operations on top/bottom replace the standalone memory
///    fences — ThreadSanitizer models atomic operations but not
///    std::atomic_thread_fence, and the TSan CI job is the merge bar for
///    this pool. The store-load orderings the algorithm needs (owner's
///    bottom decrement before its top read; thief's top read before its
///    bottom read) hold under the seq_cst total order.
///
///  * grown buffers are retired, not freed: a thief can hold a stale
///    buffer pointer across a grow, and since grow copies (never moves)
///    the live range, the stale slot still yields the right item if the
///    thief's top CAS wins. Retired buffers are freed when the deque dies;
///    doubling means they sum to less than one peak-sized buffer.
class StealDeque {
 public:
  StealDeque() : buffer_(new Buffer(kInitialCapacity)) {}

  ~StealDeque() { delete buffer_.load(std::memory_order_relaxed); }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.
  void push(detail::WorkItem* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) buf = grow(buf, t, b);
    buf->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only; nullptr when empty (or the last item was lost to a thief).
  detail::WorkItem* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    detail::WorkItem* item = nullptr;
    if (t <= b) {
      item = buf->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          item = nullptr;
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread; nullptr when empty or when the race for the top element
  /// was lost (callers just move on to the next victim).
  detail::WorkItem* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    detail::WorkItem* item = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return item;
  }

 private:
  static constexpr std::int64_t kInitialCapacity = 64;

  struct Buffer {
    explicit Buffer(std::int64_t capacity)
        : capacity(capacity),
          mask(capacity - 1),
          slots(new std::atomic<detail::WorkItem*>[capacity]) {}
    std::atomic<detail::WorkItem*>& slot(std::int64_t i) const {
      return slots[i & mask];
    }
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<detail::WorkItem*>[]> slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    buffer_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner + destructor only
};

}  // namespace

struct Executor::Impl {
  struct Worker {
    StealDeque deque;
    std::thread thread;
  };

  std::vector<std::unique_ptr<Worker>> workers;

  // External (non-worker) submissions: FIFO injection queue.
  std::mutex inject_mutex;
  std::deque<detail::WorkItem*> inject;

  // Parking. `queued` counts pushed-but-not-acquired items; together with
  // `sleepers` it forms the Dekker-style seq_cst handshake that makes the
  // sleep/wake path lose no wakeups: a submitter either observes a sleeper
  // (and notifies under the mutex) or the would-be sleeper observes the
  // queued item in its predicate and never parks.
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  std::atomic<std::int64_t> queued{0};
  std::atomic<int> sleepers{0};
  std::atomic<bool> stop{false};

  detail::WorkItem* acquire(int self);
  void worker_loop(unsigned index);
  void wake_sleepers();

  // Worker identity of the calling thread, per executor: lets enqueue()
  // target the worker's own deque and acquire() skip it as a steal victim.
  static thread_local Impl* tl_impl;
  static thread_local unsigned tl_index;
};

thread_local Executor::Impl* Executor::Impl::tl_impl = nullptr;
thread_local unsigned Executor::Impl::tl_index = 0;

detail::WorkItem* Executor::Impl::acquire(int self) {
  if (self >= 0) {
    if (detail::WorkItem* item = workers[static_cast<std::size_t>(self)]->deque.pop()) {
      queued.fetch_sub(1, std::memory_order_seq_cst);
      return item;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(inject_mutex);
    if (!inject.empty()) {
      detail::WorkItem* item = inject.front();
      inject.pop_front();
      queued.fetch_sub(1, std::memory_order_seq_cst);
      return item;
    }
  }
  const std::size_t n = workers.size();
  const std::size_t start = self >= 0 ? static_cast<std::size_t>(self) + 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (static_cast<std::int64_t>(victim) == self) continue;
    if (detail::WorkItem* item = workers[victim]->deque.steal()) {
      queued.fetch_sub(1, std::memory_order_seq_cst);
      return item;
    }
  }
  return nullptr;
}

void Executor::Impl::wake_sleepers() {
  if (sleepers.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section: serializes with a sleeper between its
    // predicate check and the actual wait, closing the lost-wakeup window.
    { const std::lock_guard<std::mutex> lock(sleep_mutex); }
    sleep_cv.notify_all();
  }
}

void Executor::Impl::worker_loop(unsigned index) {
  tl_impl = this;
  tl_index = index;
  unsigned round = 0;
  for (;;) {
    if (detail::WorkItem* item = acquire(static_cast<int>(index))) {
      item->execute();
      round = 0;
      continue;
    }
    if (round < kBackoffRounds) {
      backoff_pause(round++);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex);
    sleepers.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv.wait(lock, [this] {
      return stop.load(std::memory_order_relaxed) ||
             queued.load(std::memory_order_seq_cst) > 0;
    });
    sleepers.fetch_sub(1, std::memory_order_relaxed);
    if (stop.load(std::memory_order_relaxed) &&
        queued.load(std::memory_order_seq_cst) == 0)
      return;
    round = 0;
  }
}

Executor::Executor(unsigned threads) : impl_(std::make_unique<Impl>()) {
  const unsigned count = resolve_thread_count(threads);
  impl_->workers.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    impl_->workers.push_back(std::make_unique<Impl::Worker>());
  // All deques exist before any worker can steal from a sibling.
  for (unsigned i = 0; i < count; ++i)
    impl_->workers[i]->thread =
        std::thread([impl = impl_.get(), i] { impl->worker_loop(i); });
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->sleep_cv.notify_all();
  for (auto& worker : impl_->workers) worker->thread.join();
}

unsigned Executor::workers() const noexcept {
  return static_cast<unsigned>(impl_->workers.size());
}

bool Executor::try_help() {
  Impl& impl = *impl_;
  const int self =
      Impl::tl_impl == &impl ? static_cast<int>(Impl::tl_index) : -1;
  if (detail::WorkItem* item = impl.acquire(self)) {
    item->execute();
    return true;
  }
  return false;
}

void Executor::enqueue(detail::WorkItem* item, std::size_t copies) {
  Impl& impl = *impl_;
  if (Impl::tl_impl == &impl) {
    StealDeque& deque = impl.workers[Impl::tl_index]->deque;
    for (std::size_t i = 0; i < copies; ++i) deque.push(item);
  } else {
    const std::lock_guard<std::mutex> lock(impl.inject_mutex);
    for (std::size_t i = 0; i < copies; ++i) impl.inject.push_back(item);
  }
  impl.queued.fetch_add(static_cast<std::int64_t>(copies),
                        std::memory_order_seq_cst);
  impl.wake_sleepers();
}

void Executor::wait_for(TaskGroup& group) {
  Impl& impl = *impl_;
  const int self =
      Impl::tl_impl == &impl ? static_cast<int>(Impl::tl_index) : -1;
  unsigned round = 0;
  while (group.pending_.load(std::memory_order_acquire) != 0) {
    if (detail::WorkItem* item = impl.acquire(self)) {
      // Help instead of sleeping: this is what makes nested fan-outs on
      // the shared pool safe — the thread blocked in wait() executes the
      // very subtasks (or anyone else's) it would otherwise deadlock on.
      item->execute();
      round = 0;
      continue;
    }
    if (round < kBackoffRounds) {
      backoff_pause(round++);
      continue;
    }
    std::unique_lock<std::mutex> lock(impl.sleep_mutex);
    impl.sleepers.fetch_add(1, std::memory_order_seq_cst);
    impl.sleep_cv.wait(lock, [&] {
      return group.pending_.load(std::memory_order_seq_cst) == 0 ||
             impl.queued.load(std::memory_order_seq_cst) > 0;
    });
    impl.sleepers.fetch_sub(1, std::memory_order_relaxed);
    round = 0;
  }
}

void Executor::notify_completion() { impl_->wake_sleepers(); }

// ---- session singleton -------------------------------------------------------

namespace {

// Declaration order matters: both are constant-initialized and destroyed
// in reverse order at exit, so the executor (joining its workers) dies
// before the mutex guarding it.
std::mutex session_mutex;
std::unique_ptr<Executor> session_executor;

unsigned session_env_threads() {
  const char* env = std::getenv("DNNLIFE_EXECUTOR_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  // Nonsense values fall back to the hardware count rather than aborting a
  // run over an environment typo; the CLI flag validates loudly instead.
  if (end == nullptr || *end != '\0' || value > 4096) return 0;
  return static_cast<unsigned>(value);
}

}  // namespace

Executor& Executor::session() {
  const std::lock_guard<std::mutex> lock(session_mutex);
  if (!session_executor)
    session_executor = std::make_unique<Executor>(session_env_threads());
  return *session_executor;
}

void Executor::configure_session(unsigned threads) {
  const std::lock_guard<std::mutex> lock(session_mutex);
  const unsigned resolved = resolve_thread_count(threads);
  if (session_executor && session_executor->workers() == resolved) return;
  session_executor.reset();  // joins the old workers before resizing
  session_executor = std::make_unique<Executor>(resolved);
}

// ---- TaskGroup ---------------------------------------------------------------

struct TaskGroup::SingleItem final : detail::WorkItem {
  SingleItem(TaskGroup* group, Task task)
      : WorkItem(group), task(std::move(task)) {}

  void execute() override {
    try {
      task();
    } catch (...) {
      group->record_error(std::current_exception());
    }
    TaskGroup* const owner = group;
    delete this;
    owner->finish_one();
  }

  Task task;
};

void TaskGroup::submit(Task task) {
  DNNLIFE_EXPECTS(static_cast<bool>(task), "empty task");
  auto* item = new SingleItem(this, std::move(task));
  pending_.fetch_add(1, std::memory_order_acq_rel);
  executor_->enqueue(item, 1);
}

void TaskGroup::wait() {
  executor_->wait_for(*this);
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

unsigned TaskGroup::token_count(unsigned shards, unsigned budget) const noexcept {
  // Enough tokens that every worker plus the waiting submitter can
  // participate, capped by the concurrency budget and the shard count.
  unsigned tokens = executor_->workers() + 1;
  if (tokens > shards) tokens = shards;
  if (tokens > budget) tokens = budget;
  return tokens == 0 ? 1 : tokens;
}

void TaskGroup::record_error(std::exception_ptr error) {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::move(error);
}

void TaskGroup::finish_one() {
  // The decrement that reaches zero releases the waiter, which may destroy
  // this group immediately — so the executor pointer must be read BEFORE
  // the decrement, and nothing of the group may be touched after it. The
  // executor itself is safe to poke: its destructor joins this worker.
  Executor* const executor = executor_;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    executor->notify_completion();
}

}  // namespace dnnlife::util
