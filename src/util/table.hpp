// Minimal ASCII table printer used by the benchmark harnesses to emit the
// paper's tables and figure series in a readable, diffable form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dnnlife::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with `precision` digits.
  static std::string num(double value, int precision = 3);
  /// Convenience: format an integer.
  static std::string num(std::uint64_t value);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with column alignment and a separator under the header.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dnnlife::util
