#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace dnnlife::util {

namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("JSON error at offset " +
                              std::to_string(offset) + ": " + what);
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail_at(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      fail_at(pos_, std::string("expected '") + c + "', got '" + text_[pos_] +
                        "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f':
      case 'n': return parse_keyword();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') fail_at(pos_, "expected a quoted member name");
      std::string key = parse_string_literal();
      for (const auto& [existing, _] : value.members_)
        if (existing == key) fail_at(pos_, "duplicate member '" + key + "'");
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.type_ = JsonValue::Type::kString;
    value.string_ = parse_string_literal();
    return value;
  }

  std::string parse_string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail_at(pos_ - 1, "bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (the scenario subset has no
          // need for surrogate pairs).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail_at(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_keyword() {
    JsonValue value;
    if (consume_literal("true")) {
      value.type_ = JsonValue::Type::kBool;
      value.bool_ = true;
    } else if (consume_literal("false")) {
      value.type_ = JsonValue::Type::kBool;
      value.bool_ = false;
    } else if (consume_literal("null")) {
      value.type_ = JsonValue::Type::kNull;
    } else {
      fail_at(pos_, "unexpected token");
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double number = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, number);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_ ||
        start == pos_)
      fail_at(start, "malformed number");
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = value;
  return out;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = value;
  return out;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(value);
  return out;
}

JsonValue JsonValue::make_array() {
  JsonValue out;
  out.type_ = Type::kArray;
  return out;
}

JsonValue JsonValue::make_object() {
  JsonValue out;
  out.type_ = Type::kObject;
  return out;
}

std::string_view JsonValue::type_name(Type type) noexcept {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

namespace {

[[noreturn]] void type_mismatch(JsonValue::Type want, JsonValue::Type got) {
  throw std::invalid_argument("JSON type mismatch: expected " +
                              std::string(JsonValue::type_name(want)) +
                              ", got " +
                              std::string(JsonValue::type_name(got)));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch(Type::kBool, type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch(Type::kNumber, type_);
  return number_;
}

double JsonValue::as_number_in(double lo, double hi,
                               std::string_view what) const {
  const double number = as_number();
  if (!(number >= lo && number <= hi))
    throw std::invalid_argument(std::string(what) + " " +
                                std::to_string(number) + " out of [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  return number;
}

std::uint64_t JsonValue::as_uint() const {
  const double number = as_number();
  if (number < 0.0 || std::floor(number) != number ||
      number > 18446744073709549568.0)
    throw std::invalid_argument("JSON number " + std::to_string(number) +
                                " is not a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch(Type::kString, type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_mismatch(Type::kArray, type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_mismatch(Type::kObject, type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members())
    if (name == key) return &value;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr)
    throw std::invalid_argument("missing JSON member '" + std::string(key) +
                                "'");
  return *value;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) type_mismatch(Type::kObject, type_);
  for (auto& [name, existing] : members_)
    if (name == key) {
      existing = std::move(value);
      return;
    }
  members_.emplace_back(std::move(key), std::move(value));
}

JsonValue* JsonValue::find_mutable(std::string_view key) {
  if (type_ != Type::kObject) type_mismatch(Type::kObject, type_);
  for (auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

void JsonValue::push_back(JsonValue element) {
  if (type_ != Type::kArray) type_mismatch(Type::kArray, type_);
  items_.push_back(std::move(element));
}

std::vector<JsonValue>& JsonValue::mutable_items() {
  if (type_ != Type::kArray) type_mismatch(Type::kArray, type_);
  return items_;
}

}  // namespace dnnlife::util
