// Safeguarded scalar root finding for monotone functions.
//
// The aging layer inverts degradation-in-time curves: given a monotone
// non-decreasing f with f(0) <= target, find the crossing time t with
// f(t) == target. Power-law models have closed forms; everything else used
// to bracket-and-bisect (~100 f evaluations per solve). invert_monotone
// replaces the blind bisection with a derivative-aware Newton iteration
// that keeps the bracket as a safeguard: every iterate refines [lo, hi],
// and a Newton step that leaves the bracket (or meets a flat/undefined
// slope) falls back to one bisection step — so the solver inherits
// bisection's unconditional convergence while converging quadratically on
// the smooth convex curves device models actually produce (~5-8
// evaluations).
#pragma once

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace dnnlife::util {

/// Instrumentation of one invert_monotone / invert_monotone_bisection call
/// (iteration-budget tests and solver diagnostics).
struct InvertStats {
  int evaluations = 0;         ///< f() calls, bracketing included
  int slope_evaluations = 0;   ///< slope() calls
  int newton_steps = 0;        ///< iterations that accepted the Newton step
  int bisection_steps = 0;     ///< iterations that fell back to bisection
  int bracket_doublings = 0;   ///< doublings needed to bracket the target
};

/// Relative bracket-width convergence tolerance shared by both solvers
/// (ulp scale: ~5 ulps of the root).
inline constexpr double kInvertRelTol = 1e-15;

namespace detail {

/// Double `hi` until f(hi) >= target. Returns false (target unreachable,
/// e.g. a zero-stress environment) after 200 doublings.
template <class F>
bool bracket_above(F& f, double target, double& hi, double& f_hi,
                   InvertStats& stats) {
  ++stats.evaluations;
  f_hi = f(hi);
  while (f_hi < target) {
    hi *= 2.0;
    if (++stats.bracket_doublings > 200) return false;
    ++stats.evaluations;
    f_hi = f(hi);
  }
  return true;
}

}  // namespace detail

/// Find t >= 0 with f(t) == target for a monotone non-decreasing f with
/// f(0) <= target and target > 0. `slope` returns df/dt (used for Newton
/// steps; it may return 0, inf or NaN where undefined — those iterations
/// bisect instead). `initial_hi` seeds the bracketing doubling (a model's
/// reference horizon). Returns +inf when the target is unreachable.
template <class F, class Slope>
double invert_monotone(F&& f, Slope&& slope, double target, double initial_hi,
                       InvertStats* stats = nullptr) {
  DNNLIFE_EXPECTS(target > 0.0, "invert_monotone needs a positive target");
  InvertStats local;
  InvertStats& st = stats != nullptr ? *stats : local;
  double hi = initial_hi > 0.0 ? initial_hi : 1.0;
  double f_hi = 0.0;
  if (!detail::bracket_above(f, target, hi, f_hi, st))
    return std::numeric_limits<double>::infinity();
  double lo = 0.0;
  double t = hi;
  double ft = f_hi;
  for (int i = 0; i < 100; ++i) {
    // Every iterate tightens the bracket, Newton step or not.
    (ft < target ? lo : hi) = t;
    // f-space convergence: the iterate reproduces the target to a few
    // ulps — tighter than the bracket criterion ever gets on smooth
    // curves, and what Newton reaches in a handful of steps.
    if (std::abs(ft - target) <=
        target * 4.0 * std::numeric_limits<double>::epsilon())
      return t;
    if (hi - lo <= hi * kInvertRelTol) return 0.5 * (lo + hi);
    ++st.slope_evaluations;
    const double s = slope(t);
    double next = std::numeric_limits<double>::quiet_NaN();
    if (std::isfinite(s) && s > 0.0) {
      if (t > 0.0 && ft > 0.0) {
        // Newton in log-log space: with u = ln t the step divides by
        // d ln f / d ln u = t f'/f. Power laws are straight lines there,
        // so the iteration lands on the root in ~1 step even when it
        // sits orders of magnitude below the bracket — the regime where
        // linear Newton on a sublinear curve degenerates to bisection.
        next = t * std::exp(std::log(target / ft) / (t * s / ft));
      } else {
        next = t - (ft - target) / s;
      }
    }
    if (std::isfinite(next) && next > lo && next < hi) {
      ++st.newton_steps;
    } else {
      next = 0.5 * (lo + hi);
      ++st.bisection_steps;
    }
    t = next;
    ++st.evaluations;
    ft = f(t);
  }
  return 0.5 * (lo + hi);
}

/// The legacy derivative-free solver: bracket by doubling, then bisect to
/// the same relative bracket width (~100 f evaluations). Kept as the
/// reference implementation Newton results are tested against, and as the
/// documented fallback semantics of invert_monotone's safeguard.
template <class F>
double invert_monotone_bisection(F&& f, double target, double initial_hi,
                                 InvertStats* stats = nullptr) {
  DNNLIFE_EXPECTS(target > 0.0, "invert_monotone needs a positive target");
  InvertStats local;
  InvertStats& st = stats != nullptr ? *stats : local;
  double hi = initial_hi > 0.0 ? initial_hi : 1.0;
  double f_hi = 0.0;
  if (!detail::bracket_above(f, target, hi, f_hi, st))
    return std::numeric_limits<double>::infinity();
  double lo = 0.0;
  for (int i = 0; i < 200 && hi - lo > hi * kInvertRelTol; ++i) {
    const double mid = 0.5 * (lo + hi);
    ++st.evaluations;
    ++st.bisection_steps;
    (f(mid) < target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace dnnlife::util
