#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace dnnlife::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DNNLIFE_EXPECTS(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DNNLIFE_EXPECTS(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << "|" << std::string(widths[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace dnnlife::util
