// A small blocking thread pool and deterministic sharded parallel-for.
//
// The experiment layer parallelizes two coarse-grained dimensions: policies
// within a Workbench, and the row dimension of the fast simulator's commit
// phase. Both decompose into independent tasks whose results land in
// disjoint slots, so determinism needs no synchronisation beyond the final
// join: every task computes a pure function of its inputs (per-shard RNG
// streams are derived with util::derive_seed, never shared), and the shard
// partition below depends only on (n, shards) — results are bit-identical
// for any thread count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dnnlife::util {

/// The shared `threads` parameter convention: 0 means "use the hardware",
/// anything else is taken literally.
inline unsigned resolve_thread_count(unsigned threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Fixed-size worker pool. Tasks run in submission order (FIFO) across the
/// workers; wait() blocks until the queue drains and rethrows the first
/// task exception, if any.
class ThreadPool {
 public:
  /// `thread_count` 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned thread_count = 0) {
    thread_count = resolve_thread_count(thread_count);
    workers_.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    ready_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void submit(std::function<void()> task) {
    DNNLIFE_EXPECTS(task != nullptr, "empty task");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++pending_;
      queue_.push_back(std::move(task));
    }
    ready_.notify_one();
  }

  /// Block until all submitted tasks have finished; rethrow the first
  /// exception any of them raised.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
      std::exception_ptr error = std::exchange(error_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested and nothing left
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

/// The contiguous range shard `s` of `shards` covers in [0, n):
/// [s*n/shards, (s+1)*n/shards). Pure function of (n, shards, s) so the
/// work decomposition — and therefore any shard-seeded randomness — is
/// independent of scheduling.
constexpr std::pair<std::uint64_t, std::uint64_t> shard_range(
    std::uint64_t n, unsigned shards, unsigned s) noexcept {
  const std::uint64_t begin = n * s / shards;
  const std::uint64_t end = n * (s + 1) / shards;
  return {begin, end};
}

/// Run fn(shard, begin, end) over [0, n) split into `shards` contiguous
/// ranges using `pool`; blocks until all shards finish.
template <class Fn>
void parallel_for_shards(ThreadPool& pool, std::uint64_t n, unsigned shards,
                         Fn&& fn) {
  DNNLIFE_EXPECTS(shards >= 1, "need at least one shard");
  if (n == 0) return;
  if (shards == 1) {
    fn(0u, std::uint64_t{0}, n);
    return;
  }
  for (unsigned s = 0; s < shards; ++s) {
    const auto [begin, end] = shard_range(n, shards, s);
    if (begin == end) continue;
    pool.submit([&fn, s, begin = begin, end = end] { fn(s, begin, end); });
  }
  pool.wait();
}

/// Convenience overload: `threads` <= 1 runs inline (no pool, no thread
/// spawn); otherwise a transient pool of `threads` workers is used. The
/// shard partition is threads-count-dependent, so callers that need
/// thread-count-invariant results must make per-shard work a pure function
/// of the item index (see fast_simulator.cpp).
template <class Fn>
void parallel_for_shards(std::uint64_t n, unsigned threads, Fn&& fn) {
  threads = resolve_thread_count(threads);
  if (n < threads) threads = static_cast<unsigned>(n == 0 ? 1 : n);
  if (threads <= 1) {
    if (n > 0) fn(0u, std::uint64_t{0}, n);
    return;
  }
  ThreadPool pool(threads);
  parallel_for_shards(pool, n, threads, fn);
}

}  // namespace dnnlife::util
