// DEPRECATED — scheduled for removal. Compatibility layer over
// util/executor.hpp.
//
// ThreadPool used to be a private fixed-size worker pool; every layer of
// the stack constructed its own, so nested fan-outs oversubscribed the
// machine by jobs x threads. It is now a thin shim: the `thread_count`
// becomes a concurrency *budget* on the process-wide work-stealing
// executor (Executor::session()), and no threads are spawned here at all.
//
// As of the sim-cache PR no production code constructs a ThreadPool — the
// only remaining references are its own shim tests (test_util_parallel,
// test_executor) and bench_executor's embedded legacy copy. The class is
// kept solely as a grace period for out-of-tree callers and will be
// deleted (together with the pool-taking parallel_for_shards overload)
// once one release has shipped with this notice. New code must use
// util::TaskGroup / TaskGroup::submit_bulk directly; the free-function
// parallel_for_shards(n, threads, fn) below is NOT deprecated and stays.
//
// Determinism is unchanged: tasks land results in disjoint slots, the
// shard partition below depends only on (n, shards), and per-shard RNG
// streams are derived with util::derive_seed — results are bit-identical
// for any thread count and any executor size.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "util/check.hpp"
#include "util/executor.hpp"

namespace dnnlife::util {

class ThreadPool;

template <class Fn>
void parallel_for_shards(ThreadPool& pool, std::uint64_t n, unsigned shards,
                         Fn&& fn);

/// Deprecated shim: submits to the session executor under a concurrency
/// budget of `thread_count` instead of owning threads. Semantics match the
/// old pool where consumers relied on them — submit() then wait(), first
/// task exception rethrown by wait(), reusable afterwards. FIFO execution
/// order across workers is NOT preserved (tasks may run in any order);
/// in-tree callers never depended on it.
class ThreadPool {
 public:
  /// `thread_count` 0 means std::thread::hardware_concurrency(). This is
  /// now a budget: at most this many of the pool's tasks run concurrently
  /// on the shared executor.
  explicit ThreadPool(unsigned thread_count = 0)
      : budget_(resolve_thread_count(thread_count)) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() = default;  // group_ waits for stragglers

  /// The concurrency budget (kept the name so out-of-tree callers compile).
  unsigned size() const noexcept { return budget_; }

  void submit(std::function<void()> task) {
    DNNLIFE_EXPECTS(task != nullptr, "empty task");
    group_.submit(Task(std::move(task)));
  }

  /// Block until all submitted tasks have finished; rethrow the first
  /// exception any of them raised. Runs pending executor work while
  /// blocked, so shimmed pools still compose with nested fan-outs.
  void wait() { group_.wait(); }

 private:
  template <class Fn>
  friend void parallel_for_shards(ThreadPool&, std::uint64_t, unsigned, Fn&&);

  unsigned budget_;
  TaskGroup group_;
};

/// Run fn(shard, begin, end) over [0, n) split into `shards` contiguous
/// ranges on the session executor; blocks until all shards finish. Kept
/// for compatibility — the pool only contributes its budget; prefer
/// TaskGroup::submit_bulk.
template <class Fn>
void parallel_for_shards(ThreadPool& pool, std::uint64_t n, unsigned shards,
                         Fn&& fn) {
  DNNLIFE_EXPECTS(shards >= 1, "need at least one shard");
  if (n == 0) return;
  if (shards == 1) {
    fn(0u, std::uint64_t{0}, n);
    return;
  }
  pool.group_.submit_bulk(n, shards, pool.budget_, std::forward<Fn>(fn));
  pool.group_.wait();
}

/// Run fn(shard, begin, end) over [0, n) split into min(threads, n)
/// contiguous ranges. `threads` is a concurrency budget on the session
/// executor (<= 1 runs inline with no submission at all). The shard
/// partition is budget-dependent, so callers that need budget-invariant
/// results must make per-shard work a pure function of the item index
/// (see fast_simulator.cpp).
template <class Fn>
void parallel_for_shards(std::uint64_t n, unsigned threads, Fn&& fn) {
  threads = resolve_thread_count(threads);
  if (n < threads) threads = static_cast<unsigned>(n == 0 ? 1 : n);
  if (threads <= 1) {
    if (n > 0) fn(0u, std::uint64_t{0}, n);
    return;
  }
  TaskGroup group;
  group.submit_bulk(n, threads, std::forward<Fn>(fn));
  group.wait();
}

}  // namespace dnnlife::util
