// Tiny explicit little-endian binary codec.
//
// The disk simulation store (core/sim_store.hpp) serializes tracker words
// into files that may be read back by a different build on a different
// machine, so the byte layout must be pinned — never memcpy of structs or
// host-endian integers. Writers append to a std::string; readers consume
// through a bounds-checked cursor that throws std::invalid_argument on
// underflow instead of reading past the buffer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dnnlife::util {

inline void append_u32le(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
}

inline void append_u64le(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
}

/// Length-prefixed (u64) byte string.
inline void append_sized_bytes(std::string& out, std::string_view bytes) {
  append_u64le(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

/// Bounds-checked forward cursor over a byte range. All reads throw
/// std::invalid_argument (message says what was being read) rather than
/// walking off the end — corrupt input must surface as a parse error.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - offset_; }
  bool exhausted() const noexcept { return offset_ == data_.size(); }

  std::uint32_t u32(const char* what) {
    require(4, what);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8)
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[offset_++]))
               << shift;
    return value;
  }

  std::uint64_t u64(const char* what) {
    require(8, what);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8)
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[offset_++]))
               << shift;
    return value;
  }

  std::string_view bytes(std::size_t count, const char* what) {
    require(count, what);
    const std::string_view view = data_.substr(offset_, count);
    offset_ += count;
    return view;
  }

  std::string_view sized_bytes(const char* what) {
    const std::uint64_t size = u64(what);
    if (size > remaining())
      throw std::invalid_argument(std::string("truncated input reading ") +
                                  what);
    return bytes(static_cast<std::size_t>(size), what);
  }

 private:
  void require(std::size_t count, const char* what) const {
    if (remaining() < count)
      throw std::invalid_argument(std::string("truncated input reading ") +
                                  what);
  }

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace dnnlife::util
