#include "util/fsio.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#ifdef DNNLIFE_HAVE_FSYNC
#include <fcntl.h>
#include <unistd.h>
#endif

namespace dnnlife::util {

void fsync_stream(std::FILE* file) noexcept {
#ifdef DNNLIFE_HAVE_FSYNC
  if (file != nullptr) ::fsync(::fileno(file));
#else
  (void)file;
#endif
}

void fsync_parent_directory(const std::string& path) noexcept {
#ifdef DNNLIFE_HAVE_FSYNC
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
#ifdef O_DIRECTORY
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
#else
  const int fd = ::open(parent.c_str(), O_RDONLY);
#endif
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

void write_file_durable(const std::string& tmp_path,
                        const std::string& final_path,
                        std::string_view contents) {
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("cannot open '" + tmp_path +
                             "' for writing: " + std::strerror(errno));
  const bool wrote =
      std::fwrite(contents.data(), 1, contents.size(), file) ==
          contents.size() &&
      std::fflush(file) == 0;
  if (!wrote) {
    const int saved_errno = errno;
    std::fclose(file);
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    throw std::runtime_error("write to '" + tmp_path +
                             "' failed: " + std::strerror(saved_errno));
  }
  fsync_stream(file);
  if (std::fclose(file) != 0) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    throw std::runtime_error("closing '" + tmp_path +
                             "' failed: " + std::strerror(errno));
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    throw std::runtime_error("rename '" + tmp_path + "' -> '" + final_path +
                             "' failed: " + ec.message());
  }
  fsync_parent_directory(final_path);
}

}  // namespace dnnlife::util
