#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dnnlife::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DNNLIFE_EXPECTS(bins >= 1, "histogram needs at least one bin");
  DNNLIFE_EXPECTS(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double value, std::uint64_t count) {
  counts_[bin_of(value)] += count;
  total_ += count;
}

std::uint64_t Histogram::count_in_bin(std::size_t bin) const {
  DNNLIFE_EXPECTS(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  DNNLIFE_EXPECTS(bin < counts_.size(), "bin index out of range");
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

double Histogram::bin_mid(std::size_t bin) const {
  return bin_lo(bin) + 0.5 * bin_width_;
}

double Histogram::fraction_in_bin(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count_in_bin(bin)) / static_cast<double>(total_);
}

std::size_t Histogram::bin_of(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
  return std::min(bin, counts_.size() - 1);
}

std::string Histogram::to_string(int edge_precision, std::size_t bar_width) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double pct = 100.0 * fraction_in_bin(b);
    out.precision(edge_precision);
    out << "  [" << bin_lo(b) << ", " << bin_hi(b) << (b + 1 == counts_.size() ? "]" : ")");
    out.precision(2);
    out << "  " << counts_[b] << "  " << pct << "%  ";
    const auto bar = static_cast<std::size_t>(std::lround(
        pct / 100.0 * static_cast<double>(bar_width)));
    out << std::string(bar, '#') << '\n';
  }
  return out.str();
}

void Histogram::merge(const Histogram& other) {
  DNNLIFE_EXPECTS(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
                      other.hi_ == hi_,
                  "histogram geometries differ");
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
}

}  // namespace dnnlife::util
