// Deterministic JSON writer — the serialisation half of util/json.hpp.
//
// The scenario generator materialises documents that must be byte-identical
// across runs and machines (shard manifests hash them), so the writer is
// fully deterministic: members keep their stored order, numbers use the
// shortest round-trip representation (std::to_chars), strings escape
// exactly the characters the reader understands. write_json → JsonValue::
// parse reproduces the tree bit for bit (numbers included); non-finite
// numbers have no JSON representation and throw instead of emitting a
// token the strict reader would reject.
#pragma once

#include <string>

#include "util/json.hpp"

namespace dnnlife::util {

struct JsonWriteOptions {
  /// Spaces per nesting level; negative writes the whole document on one
  /// line (no whitespace at all — the canonical form used for hashing).
  int indent = 2;
};

/// Serialise a value tree. Throws std::invalid_argument on non-finite
/// numbers (JSON has no inf/nan).
std::string write_json(const JsonValue& value,
                       const JsonWriteOptions& options = {});

/// Shortest decimal representation that parses back to exactly `value`.
/// Integral values render without a decimal point ("85", not "85.0").
/// Throws std::invalid_argument on non-finite input.
std::string json_number_repr(double value);

/// Escape a string for embedding between JSON quotes (standard escapes,
/// \uXXXX for other control characters). Shared by every JSON emitter in
/// the framework.
std::string json_escape(const std::string& text);

}  // namespace dnnlife::util
