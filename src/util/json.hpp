// Minimal JSON value tree for the declarative scenario layer.
//
// Parses the JSON subset the framework's own specs use — objects, arrays,
// strings (with the standard escapes), numbers, booleans and null — into a
// value tree. Strict: trailing garbage, unterminated literals and
// malformed numbers throw std::invalid_argument with the character offset.
// Deliberately tiny (no external dependency, no comments); object members
// keep their textual order and are accessed linearly, which is plenty for
// hand-written scenario files.
//
// The scenario generator also *builds* documents: the make_* factories and
// set/push_back mutators grow a tree that util/json_writer.hpp serialises
// deterministically (write → parse round-trips the tree exactly).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dnnlife::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document.
  static JsonValue parse(std::string_view text);

  /// Builder factories for programmatically constructed documents.
  static JsonValue make_null() noexcept { return JsonValue(); }
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array();
  static JsonValue make_object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number checked against an inclusive range; the error message names
  /// `what` and the violated bound (spec parsers reject out-of-range
  /// values at the document, not mid-run).
  double as_number_in(double lo, double hi, std::string_view what) const;
  /// as_number checked to be a non-negative integer that fits the type.
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup: find returns nullptr when absent; at throws.
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;

  /// Mutators (builder side). All throw std::invalid_argument when called
  /// on the wrong type, like the typed accessors.
  /// Set an object member: replaces the value in place when the key exists
  /// (member order is preserved), appends otherwise.
  void set(std::string key, JsonValue value);
  /// Mutable object member lookup; nullptr when absent.
  JsonValue* find_mutable(std::string_view key);
  /// Append an array element.
  void push_back(JsonValue element);
  /// Mutable array elements, for in-place rewrites of nested documents.
  std::vector<JsonValue>& mutable_items();

  /// Human-readable type name ("object", "number", ...) for messages.
  static std::string_view type_name(Type type) noexcept;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace dnnlife::util
