#include "util/csv.hpp"

#include "util/check.hpp"

namespace dnnlife::util {

namespace {

void write_row(std::ofstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out << ',';
    out << CsvWriter::escape(row[i]);
  }
  out << '\n';
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  DNNLIFE_EXPECTS(arity_ > 0, "csv needs at least one column");
  if (!out_) throw std::runtime_error("cannot open CSV output: " + path);
  write_row(out_, header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  DNNLIFE_EXPECTS(row.size() == arity_, "csv row arity mismatch");
  write_row(out_, row);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace dnnlife::util
