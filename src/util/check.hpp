// Contract-check helpers (Core Guidelines I.5/I.7 style).
//
// DNNLIFE_EXPECTS(cond, msg): precondition; throws std::invalid_argument.
// DNNLIFE_ENSURES(cond, msg): postcondition/invariant; throws std::logic_error.
//
// These are always on: the library is a research instrument and silent
// contract violations would corrupt experiment results.
#pragma once

#include <stdexcept>
#include <string>

namespace dnnlife::util {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : " (" + msg + ")"));
}

[[noreturn]] inline void throw_postcondition(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : " (" + msg + ")"));
}

}  // namespace dnnlife::util

#define DNNLIFE_EXPECTS(cond, msg)                                         \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dnnlife::util::throw_precondition(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define DNNLIFE_ENSURES(cond, msg)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dnnlife::util::throw_postcondition(#cond, __FILE__, __LINE__, msg); \
  } while (false)
