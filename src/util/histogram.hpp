// Fixed-bin histogram over a closed value range.
//
// Used throughout the evaluation to bucket per-cell SNM degradation and
// duty-cycle values the way the paper's Fig. 9 / Fig. 11 bar graphs do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace dnnlife::util {

class Histogram {
 public:
  /// Histogram over [lo, hi] with `bins` equal-width bins. Values outside
  /// the range are clamped into the first/last bin (the evaluation ranges
  /// are chosen to cover the model output, clamping only guards round-off).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t count = 1);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count_in_bin(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Inclusive lower edge of bin `bin`.
  double bin_lo(std::size_t bin) const;
  /// Exclusive upper edge of bin `bin` (inclusive for the last bin).
  double bin_hi(std::size_t bin) const;
  /// Midpoint of bin `bin`.
  double bin_mid(std::size_t bin) const;

  /// Fraction (0..1) of samples in bin `bin`; 0 if the histogram is empty.
  double fraction_in_bin(std::size_t bin) const;

  /// Bin index a value falls into (after clamping).
  std::size_t bin_of(double value) const;

  /// Render as an ASCII bar chart, one line per bin:
  ///   [lo, hi)  count  percent  bar
  /// `label_format` controls the numeric precision of the edges.
  std::string to_string(int edge_precision = 2, std::size_t bar_width = 40) const;

  /// Merge another histogram with identical geometry.
  void merge(const Histogram& other);

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dnnlife::util
