// Small bit-manipulation helpers shared across modules.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace dnnlife::util {

/// Extract bit `pos` (0 = LSB) of `word`.
constexpr bool bit_at(std::uint64_t word, unsigned pos) noexcept {
  return ((word >> pos) & 1u) != 0;
}

/// Set bit `pos` (0 = LSB) of `word` to `value`.
constexpr std::uint64_t with_bit(std::uint64_t word, unsigned pos, bool value) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << pos;
  return value ? (word | mask) : (word & ~mask);
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t word) noexcept {
  return static_cast<unsigned>(std::popcount(word));
}

/// Mask with the lowest `n` bits set (n in [0, 64]).
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Rotate the low `width` bits of `word` left by `amount`; upper bits must be 0.
inline std::uint64_t rotate_left(std::uint64_t word, unsigned amount, unsigned width) {
  DNNLIFE_EXPECTS(width >= 1 && width <= 64, "rotate width out of range");
  DNNLIFE_EXPECTS((word & ~low_mask(width)) == 0, "word has bits above width");
  amount %= width;
  if (amount == 0) return word;
  return ((word << amount) | (word >> (width - amount))) & low_mask(width);
}

/// Rotate the low `width` bits of `word` right by `amount`.
inline std::uint64_t rotate_right(std::uint64_t word, unsigned amount, unsigned width) {
  DNNLIFE_EXPECTS(width >= 1 && width <= 64, "rotate width out of range");
  amount %= width;
  return rotate_left(word, width - amount == width ? 0 : width - amount, width);
}

/// True if `v` is a power of two (v > 0).
constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0 : (num + den - 1) / den;
}

/// Σ_{i=0}^{n-1} floor((offset + i*step) / m) in O(log) time (the
/// Euclidean-descent "floor sum"). Exact for any inputs whose true sum
/// fits in 64 bits; used to count bit-pattern periods along arithmetic
/// progressions without iterating them.
constexpr std::uint64_t floor_sum(std::uint64_t n, std::uint64_t step,
                                  std::uint64_t offset, std::uint64_t m) noexcept {
  std::uint64_t ans = 0;
  std::uint64_t a = step;
  std::uint64_t b = offset;
  while (n > 0) {
    if (a >= m) {
      ans += n * (n - 1) / 2 * (a / m);
      a %= m;
    }
    if (b >= m) {
      ans += n * (b / m);
      b %= m;
    }
    const std::uint64_t y_max = a * n + b;
    if (y_max < m) break;
    // Transpose: count lattice points under the line from the other axis.
    n = y_max / m;
    b = y_max % m;
    const std::uint64_t t = m;
    m = a;
    a = t;
  }
  return ans;
}

/// ceil(log2(v)) for v >= 1.
constexpr unsigned ceil_log2(std::uint64_t v) noexcept {
  unsigned bits = 0;
  std::uint64_t cap = 1;
  while (cap < v) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace dnnlife::util
