// Small bit-manipulation helpers shared across modules, plus the SIMD
// portability shim for the duty-accumulation kernels.
//
// The kernel shim is selected once at compile time: AVX2 on x86-64 builds
// whose ISA flags enable it (see the DNNLIFE_NATIVE_ARCH CMake option),
// NEON on AArch64, and a plain scalar loop everywhere else. Defining
// DNNLIFE_FORCE_SCALAR (CMake option of the same name) overrides the
// detection and forces the scalar path — the CI matrix builds both so the
// dispatch and reference kernels stay green together. All kernels work in
// exact mod-2^32 integer arithmetic, so the vector paths are bit-identical
// to the scalar reference by construction (tests/test_bitops_kernels.cpp
// verifies this word-for-word).
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.hpp"

#if defined(DNNLIFE_FORCE_SCALAR)
#define DNNLIFE_DUTY_KERNEL_SCALAR 1
#elif defined(__AVX2__)
#define DNNLIFE_DUTY_KERNEL_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define DNNLIFE_DUTY_KERNEL_NEON 1
#include <arm_neon.h>
#else
#define DNNLIFE_DUTY_KERNEL_SCALAR 1
#endif

namespace dnnlife::util {

/// Extract bit `pos` (0 = LSB) of `word`.
constexpr bool bit_at(std::uint64_t word, unsigned pos) noexcept {
  return ((word >> pos) & 1u) != 0;
}

/// Set bit `pos` (0 = LSB) of `word` to `value`.
constexpr std::uint64_t with_bit(std::uint64_t word, unsigned pos, bool value) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << pos;
  return value ? (word | mask) : (word & ~mask);
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t word) noexcept {
  return static_cast<unsigned>(std::popcount(word));
}

/// Mask with the lowest `n` bits set (n in [0, 64]).
constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Rotate the low `width` bits of `word` left by `amount`; upper bits must be 0.
inline std::uint64_t rotate_left(std::uint64_t word, unsigned amount, unsigned width) {
  DNNLIFE_EXPECTS(width >= 1 && width <= 64, "rotate width out of range");
  DNNLIFE_EXPECTS((word & ~low_mask(width)) == 0, "word has bits above width");
  amount %= width;
  if (amount == 0) return word;
  return ((word << amount) | (word >> (width - amount))) & low_mask(width);
}

/// Rotate the low `width` bits of `word` right by `amount`.
inline std::uint64_t rotate_right(std::uint64_t word, unsigned amount, unsigned width) {
  DNNLIFE_EXPECTS(width >= 1 && width <= 64, "rotate width out of range");
  amount %= width;
  return rotate_left(word, width - amount == width ? 0 : width - amount, width);
}

/// True if `v` is a power of two (v > 0).
constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0 : (num + den - 1) / den;
}

/// Σ_{i=0}^{n-1} floor((offset + i*step) / m) in O(log) time (the
/// Euclidean-descent "floor sum"). Exact for any inputs whose true sum
/// fits in 64 bits; used to count bit-pattern periods along arithmetic
/// progressions without iterating them.
constexpr std::uint64_t floor_sum(std::uint64_t n, std::uint64_t step,
                                  std::uint64_t offset, std::uint64_t m) noexcept {
  std::uint64_t ans = 0;
  std::uint64_t a = step;
  std::uint64_t b = offset;
  while (n > 0) {
    if (a >= m) {
      ans += n * (n - 1) / 2 * (a / m);
      a %= m;
    }
    if (b >= m) {
      ans += n * (b / m);
      b %= m;
    }
    const std::uint64_t y_max = a * n + b;
    if (y_max < m) break;
    // Transpose: count lattice points under the line from the other axis.
    n = y_max / m;
    b = y_max % m;
    const std::uint64_t t = m;
    m = a;
    a = t;
  }
  return ans;
}

/// ceil(log2(v)) for v >= 1.
constexpr unsigned ceil_log2(std::uint64_t v) noexcept {
  unsigned bits = 0;
  std::uint64_t cap = 1;
  while (cap < v) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

// ---- duty-accumulation kernels (AVX2 / NEON / scalar) ------------------------

/// The kernel variant this build dispatches to ("avx2", "neon" or
/// "scalar") — surfaced in bench JSON artifacts so CI records which path
/// its timings measured.
constexpr const char* duty_kernel_variant() noexcept {
#if defined(DNNLIFE_DUTY_KERNEL_AVX2)
  return "avx2";
#elif defined(DNNLIFE_DUTY_KERNEL_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Scalar reference: dst[i] += amount for i in [0, count).
inline void add_uniform_u32_scalar(std::uint32_t* dst, std::uint32_t count,
                                   std::uint32_t amount) {
  for (std::uint32_t i = 0; i < count; ++i) dst[i] += amount;
}

/// Scalar reference of the masked blend — THE definition of the blend
/// semantics every other kernel (and every whole-word fast path) must
/// reproduce: dst[b] += lo + bit_b(word) * delta for b in [0, count),
/// count <= 64, in wrapping uint32 arithmetic (delta = hi - lo wraps when
/// hi < lo; the blend is still exact mod 2^32). An all-zero word degrades
/// to a uniform add of lo, an all-ones word to a uniform add of lo + delta.
inline void add_blend_u32_scalar(std::uint32_t* dst, std::uint64_t word,
                                 std::uint32_t count, std::uint32_t lo,
                                 std::uint32_t delta) {
  for (std::uint32_t b = 0; b < count; ++b)
    dst[b] += lo + static_cast<std::uint32_t>((word >> b) & 1u) * delta;
}

#if defined(DNNLIFE_DUTY_KERNEL_AVX2)

inline void add_uniform_u32(std::uint32_t* dst, std::uint32_t count,
                            std::uint32_t amount) {
  const __m256i amount8 = _mm256_set1_epi32(static_cast<int>(amount));
  std::uint32_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i* const p = reinterpret_cast<__m256i*>(dst + i);
    _mm256_storeu_si256(p, _mm256_add_epi32(_mm256_loadu_si256(p), amount8));
  }
  add_uniform_u32_scalar(dst + i, count - i, amount);
}

/// Mask-expanded vector blend: each group of 8 payload bits is broadcast,
/// ANDed against the per-lane bit position and compared back, yielding an
/// all-ones lane mask exactly where the bit is set; the masked delta is
/// then added on top of the broadcast lo. Integer adds are exact, so the
/// result matches add_blend_u32_scalar bit-for-bit.
inline void add_blend_u32(std::uint32_t* dst, std::uint64_t word,
                          std::uint32_t count, std::uint32_t lo,
                          std::uint32_t delta) {
  const __m256i lo8 = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i delta8 = _mm256_set1_epi32(static_cast<int>(delta));
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  std::uint32_t b = 0;
  for (; b + 8 <= count; b += 8) {
    const __m256i byte =
        _mm256_set1_epi32(static_cast<int>((word >> b) & 0xffu));
    const __m256i mask =
        _mm256_cmpeq_epi32(_mm256_and_si256(byte, lane_bit), lane_bit);
    const __m256i add =
        _mm256_add_epi32(lo8, _mm256_and_si256(mask, delta8));
    __m256i* const p = reinterpret_cast<__m256i*>(dst + b);
    _mm256_storeu_si256(p, _mm256_add_epi32(_mm256_loadu_si256(p), add));
  }
  if (b < count) add_blend_u32_scalar(dst + b, word >> b, count - b, lo, delta);
}

#elif defined(DNNLIFE_DUTY_KERNEL_NEON)

inline void add_uniform_u32(std::uint32_t* dst, std::uint32_t count,
                            std::uint32_t amount) {
  const uint32x4_t amount4 = vdupq_n_u32(amount);
  std::uint32_t i = 0;
  for (; i + 4 <= count; i += 4)
    vst1q_u32(dst + i, vaddq_u32(vld1q_u32(dst + i), amount4));
  add_uniform_u32_scalar(dst + i, count - i, amount);
}

/// The AVX2 blend's 4-lane twin: broadcast a nibble of the payload,
/// compare against the per-lane bit position, mask the delta.
inline void add_blend_u32(std::uint32_t* dst, std::uint64_t word,
                          std::uint32_t count, std::uint32_t lo,
                          std::uint32_t delta) {
  const uint32x4_t lo4 = vdupq_n_u32(lo);
  const uint32x4_t delta4 = vdupq_n_u32(delta);
  const uint32x4_t lane_bit = {1u, 2u, 4u, 8u};
  std::uint32_t b = 0;
  for (; b + 4 <= count; b += 4) {
    const uint32x4_t nibble =
        vdupq_n_u32(static_cast<std::uint32_t>((word >> b) & 0xfu));
    const uint32x4_t mask = vceqq_u32(vandq_u32(nibble, lane_bit), lane_bit);
    const uint32x4_t add = vaddq_u32(lo4, vandq_u32(mask, delta4));
    vst1q_u32(dst + b, vaddq_u32(vld1q_u32(dst + b), add));
  }
  if (b < count) add_blend_u32_scalar(dst + b, word >> b, count - b, lo, delta);
}

#else  // scalar dispatch

inline void add_uniform_u32(std::uint32_t* dst, std::uint32_t count,
                            std::uint32_t amount) {
  add_uniform_u32_scalar(dst, count, amount);
}

inline void add_blend_u32(std::uint32_t* dst, std::uint64_t word,
                          std::uint32_t count, std::uint32_t lo,
                          std::uint32_t delta) {
  add_blend_u32_scalar(dst, word, count, lo, delta);
}

#endif  // duty kernel dispatch

}  // namespace dnnlife::util
