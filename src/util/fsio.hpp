// Crash-durable file publication.
//
// Two subsystems persist state that must survive power loss: the sweep
// journal (core/sweep_journal.cpp) and the disk simulation store
// (core/sim_store.cpp). Both use the same protocol to publish a file
// atomically and durably:
//
//   1. write the full contents to a unique tmp name in the target
//      directory (same filesystem, so the rename below is atomic),
//   2. fflush + fsync the tmp file (bytes reach the device, not just the
//      page cache),
//   3. rename(tmp, final) — readers see either the old entry or the
//      complete new one, never a torn write,
//   4. fsync the *parent directory* — the rename itself is a directory
//      mutation, and without this step a power loss can revert the
//      directory entry to the pre-rename state even though every byte of
//      the file was fsynced.
//
// On platforms without fsync (no <unistd.h>) the sync steps degrade to
// no-ops: still atomic against crashes of the process, just not against
// power loss.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#if __has_include(<unistd.h>)
#define DNNLIFE_HAVE_FSYNC 1
#endif

namespace dnnlife::util {

/// fsync a stdio stream's file descriptor (caller fflushes first).
/// Best-effort: sync failures are not diagnosable into anything
/// actionable here, and a no-op without fsync support.
void fsync_stream(std::FILE* file) noexcept;

/// Make a directory-entry mutation (rename/create/remove of `path`)
/// durable by fsyncing the directory that contains `path`. Best-effort:
/// some filesystems reject directory fsync; errors are swallowed.
void fsync_parent_directory(const std::string& path) noexcept;

/// Steps 1–4 above in one call: write `contents` to `tmp_path`, flush and
/// fsync it, rename it onto `final_path`, fsync the parent directory.
/// Throws std::runtime_error naming the path on write/rename failure (the
/// tmp file is removed best-effort before throwing).
void write_file_durable(const std::string& tmp_path,
                        const std::string& final_path,
                        std::string_view contents);

}  // namespace dnnlife::util
