// Session-scoped work-stealing executor: one pool for the whole stack.
//
// Every layer of the framework parallelises — suite jobs, the fast
// simulator's row-parallel commit, report-evaluation shards, policy
// fan-outs — and before this executor each of them constructed a private
// util::ThreadPool. A sweep at `--jobs=HW --threads=HW` therefore
// oversubscribed the machine by up to jobs x threads, while a
// single-scenario tail left most cores idle. The Executor replaces all of
// those pools with one process-wide set of workers sized once
// (DNNLIFE_EXECUTOR_THREADS / --executor-threads); the old per-call thread
// counts become concurrency *budgets* on that shared set.
//
// Design:
//  * Per-worker Chase-Lev-style deques (Le et al., "Correct and Efficient
//    Work-Stealing for Weak Memory Models"): the owner pushes and pops at
//    the bottom, idle workers steal from the top. External threads submit
//    through a small mutex-guarded injection queue. Fences are avoided in
//    favour of seq_cst operations on the deque indices so the algorithm is
//    expressible to ThreadSanitizer (CI runs the pool under TSan).
//  * Steal-on-empty with exponential backoff: a worker that finds nothing
//    spins through a doubling backoff over its deque, the injection queue
//    and the other deques, then parks on a condition variable; submission
//    wakes it (Dekker-style seq_cst handshake on queued/sleeper counters,
//    so no wakeup is lost).
//  * TaskGroup makes nested fan-outs safe: a thread blocked in
//    TaskGroup::wait() *runs* pending work (its own deque, the injection
//    queue, steals) instead of sleeping, so `jobs` scenario tasks can each
//    fan out shard tasks on the same pool without deadlock — even at one
//    worker — and without oversubscription.
//  * Task is a small-buffer-optimised callable (48 inline bytes): the
//    shard lambdas of the hot paths submit without touching the heap, and
//    TaskGroup::submit_bulk() shares ONE allocation across a whole shard
//    range (workers claim shards from an atomic cursor), so a report fan-
//    out is O(1) allocations and O(min(shards, workers)) deque pushes.
//
// Determinism: the executor schedules, it never decomposes. Shard
// partitions (util::shard_range over the *budget*, not the worker count)
// and per-shard RNG derivation are untouched, results land in disjoint
// slots, and folds replay in fixed shard order — so reports, sweeps and
// summaries are bit-identical for ANY worker count (pinned by goldens in
// tests/test_executor.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace dnnlife::util {

/// The shared `threads` parameter convention: 0 means "use the hardware",
/// anything else is taken literally.
inline unsigned resolve_thread_count(unsigned threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// The contiguous range shard `s` of `shards` covers in [0, n):
/// [s*n/shards, (s+1)*n/shards). Pure function of (n, shards, s) so the
/// work decomposition — and therefore any shard-seeded randomness — is
/// independent of scheduling.
constexpr std::pair<std::uint64_t, std::uint64_t> shard_range(
    std::uint64_t n, unsigned shards, unsigned s) noexcept {
  const std::uint64_t begin = n * s / shards;
  const std::uint64_t end = n * (s + 1) / shards;
  return {begin, end};
}

/// Small-buffer-optimised move-only callable. Callables up to
/// kInlineBytes that are nothrow-move-constructible live inside the Task
/// (no heap allocation on the hot submit paths); larger or throwing-move
/// ones fall back to one heap node. Invoke with operator(); a
/// default-constructed Task is empty and must not be invoked.
class Task {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;

  template <class Fn,
            std::enable_if_t<!std::is_same_v<std::decay_t<Fn>, Task>, int> = 0>
  Task(Fn&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<Fn>;
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<Fn>(fn));
      ops_ = &inline_ops<Decayed>;
    } else {
      *reinterpret_cast<Decayed**>(storage_) =
          new Decayed(std::forward<Fn>(fn));
      ops_ = &heap_ops<Decayed>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    DNNLIFE_EXPECTS(ops_ != nullptr, "invoking an empty task");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src` and destroy `src`'s payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};

  template <class Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<Fn**>(s); }};

  void move_from(Task& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class TaskGroup;

namespace detail {

/// One schedulable unit in a worker deque or the injection queue. A bulk
/// item is pushed multiple times (once per token); execute() is then
/// re-entered concurrently and the implementation manages its own
/// lifetime and its group's completion accounting.
struct WorkItem {
  explicit WorkItem(TaskGroup* group) noexcept : group(group) {}
  WorkItem(const WorkItem&) = delete;
  WorkItem& operator=(const WorkItem&) = delete;
  virtual ~WorkItem() = default;
  virtual void execute() = 0;
  TaskGroup* const group;
};

}  // namespace detail

/// Fixed set of worker threads with per-worker work-stealing deques. All
/// submission goes through TaskGroup; the executor itself only schedules.
/// One process-wide instance (session()) serves every layer of the stack;
/// constructing private executors is reserved for tests and benches.
class Executor {
 public:
  /// `threads` 0 means std::thread::hardware_concurrency().
  explicit Executor(unsigned threads = 0);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Joins the workers after the queues drain. All TaskGroups submitted to
  /// this executor must have completed (their destructors wait).
  ~Executor();

  unsigned workers() const noexcept;

  /// Run one pending item, if any, on the calling thread. Blocking waits
  /// outside TaskGroup::wait() (e.g. SweepScheduler handles) call this in
  /// a loop so a worker blocked on a future-like handle keeps the pool
  /// moving instead of deadlocking it. Returns false when no work was
  /// available.
  bool try_help();

  /// The process-wide executor every layer submits to. Created on first
  /// use with configure_session()'s thread count, else the
  /// DNNLIFE_EXECUTOR_THREADS environment variable, else the hardware
  /// concurrency.
  static Executor& session();

  /// Size (or re-size) the session executor. Sizing happens once at
  /// startup in production (--executor-threads); re-configuration is a
  /// test affordance and requires the session to be idle (no tasks in
  /// flight, no TaskGroups alive on it).
  static void configure_session(unsigned threads);

 private:
  friend class TaskGroup;

  /// Push `copies` references to `item` (pre-counted in its group). Bulk
  /// items are pushed once per token; single items once.
  void enqueue(detail::WorkItem* item, std::size_t copies);

  /// Run work (or park) until `group` has no pending units left.
  void wait_for(TaskGroup& group);

  /// Wake sleepers after a group completed (its waiters may be parked).
  void notify_completion();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A handle over a set of tasks submitted together: submit / submit_bulk
/// then wait(), which runs pending pool work while blocked (nested
/// fan-outs on the shared pool cannot deadlock) and rethrows the first
/// exception any task raised. Reusable after wait(); the destructor waits
/// for stragglers (discarding errors — call wait() to observe them).
/// Submission is thread-safe (the pending count is atomic and the queues
/// are per-worker or locked), and tasks may submit to their own group or
/// to other groups freely. The one rule: a waiter is only guaranteed to
/// cover submissions that happened-before its wait() or were made from a
/// task the group already counted — if pending can transiently drain to
/// zero while an unrelated thread races a fresh submit in, wait() may
/// return before that submission (SweepScheduler's admission chain is the
/// canonical way to keep the count covered).
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor = Executor::session())
      : executor_(&executor) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() {
    if (pending_.load(std::memory_order_acquire) != 0) executor_->wait_for(*this);
  }

  /// Submit one task. O(1) heap allocations (one work-item node; the
  /// callable itself is SBO-inlined up to Task::kInlineBytes).
  void submit(Task task);

  /// Range submission: run fn(shard, begin, end) over [0, n) split into
  /// `shards` contiguous ranges (util::shard_range — the partition is a
  /// pure function of (n, shards), never of the worker count). ONE heap
  /// allocation and min(shards, workers + 1) deque pushes total; workers
  /// claim shards from an atomic cursor, and the submitting thread's
  /// wait() participates. Exceptions are captured per shard (first wins)
  /// and rethrown by wait().
  template <class Fn>
  void submit_bulk(std::uint64_t n, unsigned shards, Fn&& fn) {
    DNNLIFE_EXPECTS(shards >= 1, "need at least one shard");
    if (n == 0) return;
    submit_bulk_impl(n, shards, shards, std::forward<Fn>(fn));
  }

  /// As above, but with a concurrency budget below the shard count: the
  /// partition stays a pure function of (n, shards) while at most `budget`
  /// shards run at once.
  template <class Fn>
  void submit_bulk(std::uint64_t n, unsigned shards, unsigned budget,
                   Fn&& fn) {
    DNNLIFE_EXPECTS(shards >= 1, "need at least one shard");
    if (n == 0) return;
    submit_bulk_impl(n, shards, budget == 0 ? shards : budget,
                     std::forward<Fn>(fn));
  }

  /// Item submission under a concurrency budget: run fn(index) for every
  /// index in [0, n), at most `budget` concurrently (a budget of 0 means
  /// the hardware count — the per-call ThreadPool sizes the old code used
  /// become budgets here). One allocation, min(budget, n) pushes.
  template <class Fn>
  void submit_items(std::size_t n, unsigned budget, Fn&& fn) {
    if (n == 0) return;
    budget = resolve_thread_count(budget);
    submit_bulk_impl(
        n, n > ~0u ? ~0u : static_cast<unsigned>(n), budget,
        [fn = std::forward<Fn>(fn)](unsigned, std::uint64_t begin,
                                    std::uint64_t end) mutable {
          for (std::uint64_t i = begin; i < end; ++i)
            fn(static_cast<std::size_t>(i));
        });
  }

  /// Block until every submitted unit finished, running pending pool work
  /// (own deque, injection queue, steals) while waiting; parks only when
  /// nothing is runnable. Rethrows the first captured exception and
  /// resets it, leaving the group reusable.
  void wait();

  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class Executor;
  friend struct detail::WorkItem;

  struct BulkItem : detail::WorkItem {
    BulkItem(TaskGroup* group, std::uint64_t n, unsigned shards,
             unsigned tokens) noexcept
        : WorkItem(group), n(n), shards(shards), tokens(tokens) {}

    void execute() final {
      for (;;) {
        const std::uint64_t s = cursor.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards) break;
        const auto [begin, end] =
            shard_range(n, shards, static_cast<unsigned>(s));
        if (begin == end) continue;
        try {
          run_shard(static_cast<unsigned>(s), begin, end);
        } catch (...) {
          group->record_error(std::current_exception());
        }
      }
      // Shards only run inside token loops, so when the last token
      // retires every shard has executed: finish the whole bulk as one
      // group unit. `this` is dead after the delete; the group pointer is
      // saved first and not touched again after finish_one (the waiter it
      // wakes may destroy the group).
      TaskGroup* const owner = group;
      if (tokens.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        delete this;
        owner->finish_one();
      }
    }

    virtual void run_shard(unsigned shard, std::uint64_t begin,
                           std::uint64_t end) = 0;

    const std::uint64_t n;
    const unsigned shards;
    std::atomic<std::uint64_t> cursor{0};
    std::atomic<unsigned> tokens;
  };

  struct SingleItem;

  template <class Fn>
  struct BulkItemOf final : BulkItem {
    BulkItemOf(TaskGroup* group, std::uint64_t n, unsigned shards,
               unsigned tokens, Fn fn)
        : BulkItem(group, n, shards, tokens), fn(std::move(fn)) {}
    void run_shard(unsigned shard, std::uint64_t begin,
                   std::uint64_t end) override {
      fn(shard, begin, end);
    }
    Fn fn;
  };

  template <class Fn>
  void submit_bulk_impl(std::uint64_t n, unsigned shards, unsigned budget,
                        Fn&& fn) {
    const unsigned tokens = token_count(shards, budget);
    auto* item = new BulkItemOf<std::decay_t<Fn>>(this, n, shards, tokens,
                                                  std::forward<Fn>(fn));
    pending_.fetch_add(1, std::memory_order_acq_rel);
    executor_->enqueue(item, tokens);
  }

  /// Deque pushes for a bulk: enough tokens that every worker plus the
  /// waiting submitter can participate, never more than the budget (the
  /// concurrency cap) or the shard count (idle tokens would be popped and
  /// retired for nothing).
  unsigned token_count(unsigned shards, unsigned budget) const noexcept;

  void record_error(std::exception_ptr error);
  void finish_one();

  Executor* executor_;
  std::atomic<std::size_t> pending_{0};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace dnnlife::util
